//! kdom as a service: typed run specifications, a bounded job
//! scheduler, and a content-addressed result cache.
//!
//! Historically a "run" was whatever the environment happened to say:
//! `KDOM_THREADS`, `KDOM_SCHED`, `KDOM_WIRE`, … were read at scattered
//! call sites, so two runs were comparable only if the shell that
//! launched them was identical. [`RunSpec`] makes the run an explicit
//! *value* — algorithm, `k`, seed, scheduler mode, worker threads, wire
//! mode, fault plan, trace toggle — with [`RunSpec::from_env`] as the
//! one adapter that still speaks the old knob dialect. Everything
//! downstream (the engine config, the executor, the cache key) is
//! derived from the spec, never from the environment.
//!
//! On top of the spec sit two service pieces:
//!
//! * [`JobPool`] — a bounded worker pool running many independent
//!   seeded simulations concurrently. Submission returns a
//!   [`JobHandle`] exposing status, the final [`JobOutput`] (report +
//!   harvested per-node outputs + captured trace), and incremental
//!   trace streaming. Because the engine itself is deterministic and
//!   each job's trace policy is thread-scoped
//!   ([`crate::trace::with_thread_trace`]), a pool of any size produces
//!   outputs byte-identical to serial execution ([`run_serial`]).
//! * [`ResultCache`] — results keyed by [`CacheKey`]: the graph's
//!   canonical fingerprint ([`Graph::fingerprint`], the same value the
//!   socket handshake compares) paired with the spec's canonical hash.
//!   A repeated submission is served from the cache without touching
//!   the engine; an LRU sweep keeps the cache inside a byte budget.
//!
//! The pool is deliberately algorithm-agnostic: it executes an opaque
//! [`Runner`] closure, so this crate stays below the algorithm crates
//! in the dependency order. `kdom_mst::service` provides the runner
//! that dispatches on [`Algo`]; the `kdom-serve` binary puts a socket
//! front end on the whole stack.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use kdom_graph::Graph;

use crate::engine::{EngineConfig, Scheduling};
use crate::faults::FaultPlan;
use crate::report::RunReport;
use crate::sim::SimError;
use crate::trace::{self, MemorySink, ThreadTrace};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

// ---------------------------------------------------------------------
// RunSpec
// ---------------------------------------------------------------------

/// The algorithm a job runs. Only compositions whose execution is fully
/// spec-driven are offered as a service — an algorithm that still read
/// knobs mid-run would break the cache's claim that equal keys mean
/// equal results.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// SimpleMST fragment growth to depth `k` (paper §2).
    SimpleMst,
    /// The general-graph fast `k`-dominating set composition (paper §3):
    /// SimpleMST fragments, the charged `DOMPartition`, and the
    /// within-cluster solver.
    FastDomG,
    /// Distributed BFS layering from node 0 (the primitive the paper's
    /// compositions lean on).
    Bfs,
}

impl Algo {
    /// Every service algorithm, in canonical order.
    pub const ALL: [Algo; 3] = [Algo::SimpleMst, Algo::FastDomG, Algo::Bfs];

    /// Stable kebab-case label (wire protocol, bench rows, `KDOM_ALGO`).
    pub fn label(self) -> &'static str {
        match self {
            Algo::SimpleMst => "simple-mst",
            Algo::FastDomG => "fastdom-g",
            Algo::Bfs => "bfs",
        }
    }

    /// Parses a label or its aliases; `None` for unknown strings.
    pub fn parse(s: &str) -> Option<Algo> {
        match s {
            "simple-mst" | "simplemst" | "mst" => Some(Algo::SimpleMst),
            "fastdom-g" | "fastdom" | "dom" => Some(Algo::FastDomG),
            "bfs" => Some(Algo::Bfs),
            _ => None,
        }
    }

    fn tag(self) -> u64 {
        match self {
            Algo::SimpleMst => 1,
            Algo::FastDomG => 2,
            Algo::Bfs => 3,
        }
    }
}

impl fmt::Display for Algo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Algo {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Algo::parse(s)
            .ok_or_else(|| format!("unknown algorithm {s:?} (use simple-mst, fastdom-g, or bfs)"))
    }
}

/// Which execution backend a job uses. The heavyweight member of the
/// core crate's `Executor` (the fault plan) lives on the [`RunSpec`]
/// itself, so this stays `Copy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecSpec {
    /// Lock-step synchronous CONGEST rounds.
    Sync,
    /// Synchronizer α over a faulty asynchronous network with the
    /// reliable (ARQ) transport; base delays are seeded by
    /// [`RunSpec::seed`].
    ReliableAlpha {
        /// Maximum base link delay in virtual time units (≥ 1).
        max_delay: u64,
    },
}

/// A fully-specified simulation run: everything that decides the
/// outputs, and nothing that doesn't.
///
/// Construction is programmatic ([`Default`] plus the `with_*`
/// builders) or via [`RunSpec::from_env`], which is now the *only*
/// place the legacy run knobs are interpreted. The spec is the unit of
/// scheduling ([`JobPool::submit`]) and — through
/// [`RunSpec::canonical_hash`] — half of the result-cache key.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// The algorithm to run.
    pub algo: Algo,
    /// The paper's `k` parameter; `0` means "auto": the dispatcher
    /// substitutes the paper's default `k(n)` for the input graph.
    pub k: u64,
    /// The run seed. Seeds the α executor's per-message base delays;
    /// always part of the cache key, so sweeps over seeds occupy
    /// distinct cache slots even for the (deterministic) sync backend.
    pub seed: u64,
    /// Round-engine worker threads (see [`EngineConfig::threads`]).
    pub threads: usize,
    /// Node-scheduling policy (see [`EngineConfig::scheduling`]).
    pub scheduling: Scheduling,
    /// Quiescence fast-forward (see [`EngineConfig::fast_forward`]).
    pub fast_forward: bool,
    /// Dense-scan fallback threshold (see [`EngineConfig::dense_pct`]).
    pub dense_pct: usize,
    /// Minimum active nodes per worker shard (see
    /// [`EngineConfig::shard_min`]).
    pub shard_min: usize,
    /// Wire-exact execution (see [`EngineConfig::wire_exact`]).
    pub wire_exact: bool,
    /// The execution backend.
    pub exec: ExecSpec,
    /// The fault adversary (fault-free by default).
    pub faults: FaultPlan,
    /// Capture a per-job JSONL trace into the job's [`MemorySink`]
    /// (streamed by `kdom-serve` subscribers, returned in
    /// [`JobOutput::trace`]).
    pub trace: bool,
}

impl Default for RunSpec {
    fn default() -> Self {
        let engine = EngineConfig::default();
        RunSpec {
            algo: Algo::SimpleMst,
            k: 0,
            seed: 0,
            threads: engine.threads,
            scheduling: engine.scheduling,
            fast_forward: engine.fast_forward,
            dense_pct: engine.dense_pct,
            shard_min: engine.shard_min,
            wire_exact: engine.wire_exact,
            exec: ExecSpec::Sync,
            faults: FaultPlan::new(0),
            trace: false,
        }
    }
}

impl RunSpec {
    /// Returns the spec with the algorithm replaced.
    pub fn with_algo(mut self, algo: Algo) -> Self {
        self.algo = algo;
        self
    }

    /// Returns the spec with `k` replaced (`0` = auto).
    pub fn with_k(mut self, k: u64) -> Self {
        self.k = k;
        self
    }

    /// Returns the spec with the run seed replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the spec with the engine worker count replaced.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns the spec with the scheduling policy replaced.
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Returns the spec with wire-exact execution enabled or not.
    pub fn with_wire_exact(mut self, on: bool) -> Self {
        self.wire_exact = on;
        self
    }

    /// Returns the spec with the execution backend replaced.
    pub fn with_exec(mut self, exec: ExecSpec) -> Self {
        self.exec = exec;
        self
    }

    /// Returns the spec with the fault plan replaced.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Returns the spec with per-job trace capture enabled or not.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// The round-engine configuration this spec describes. Tracing is
    /// *not* part of it — the trace policy is installed thread-locally
    /// by the pool, and the engine picks it up at its attach point.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            threads: self.threads,
            scheduling: self.scheduling,
            fast_forward: self.fast_forward,
            dense_pct: self.dense_pct,
            shard_min: self.shard_min,
            bit_budget: None,
            wire_exact: self.wire_exact,
            codec_profile: false,
        }
    }

    /// The spec read from the legacy environment knobs — the *single*
    /// adapter between the knob dialect and the typed spec. Reads
    /// `KDOM_ALGO`, `KDOM_K`, `KDOM_SEED`, `KDOM_EXEC`,
    /// `KDOM_MAX_DELAY`, the engine knobs (via
    /// [`EngineConfig::from_env`]) and the `KDOM_TRACE` toggle; the
    /// fault plan stays fault-free (fault injection has no knob dialect
    /// — plans are built programmatically or by the chaos harness).
    ///
    /// # Panics
    ///
    /// Panics, naming the variable and the offending value, when any
    /// knob is set but malformed (via [`kdom_graph::knob`]). Also
    /// panics when `KDOM_TRANSPORT` names a socket endpoint: an
    /// in-process run cannot honor a multi-process fleet, and silently
    /// running locally would be worse — the message points at the
    /// `kdom-shard` launcher instead.
    pub fn from_env() -> Self {
        use kdom_graph::knob::{knob, knob_checked, knob_enum, raw};
        match raw("KDOM_TRANSPORT") {
            None => {}
            Some(v) if v == "local" => {}
            Some(v) if v.parse::<crate::transport::Endpoint>().is_ok() => panic!(
                "KDOM_TRANSPORT={v} names a socket endpoint, but an in-process run \
                 cannot drive a multi-process fleet (it must hold the final automata). \
                 Launch the distributed run with the kdom-shard binary instead: \
                 `kdom-shard run --shards N --graph … --proto …`"
            ),
            Some(v) => panic!(
                "KDOM_TRANSPORT={v:?} is not understood: use `local`, or run the \
                 kdom-shard binary for socket transports"
            ),
        }
        let engine = EngineConfig::from_env();
        let algo = knob_enum(
            "KDOM_ALGO",
            Algo::SimpleMst,
            &[
                (&["simple-mst", "simplemst", "mst"], Algo::SimpleMst),
                (&["fastdom-g", "fastdom", "dom"], Algo::FastDomG),
                (&["bfs"], Algo::Bfs),
            ],
        );
        let seed = knob("KDOM_SEED", 0u64);
        let max_delay = knob_checked("KDOM_MAX_DELAY", 4u64, |&d| {
            if d >= 1 {
                Ok(())
            } else {
                Err("the maximum base delay must be at least 1".into())
            }
        });
        let exec = knob_enum(
            "KDOM_EXEC",
            ExecSpec::Sync,
            &[
                (&["sync", "local"], ExecSpec::Sync),
                (
                    &["alpha", "reliable-alpha", "reliable"],
                    ExecSpec::ReliableAlpha { max_delay },
                ),
            ],
        );
        RunSpec {
            algo,
            k: knob("KDOM_K", 0u64),
            seed,
            threads: engine.threads,
            scheduling: engine.scheduling,
            fast_forward: engine.fast_forward,
            dense_pct: engine.dense_pct,
            shard_min: engine.shard_min,
            wire_exact: engine.wire_exact,
            exec,
            faults: FaultPlan::new(seed),
            trace: raw(trace::TRACE_ENV).is_some(),
        }
    }

    /// The spec's canonical FNV-1a hash — the spec half of the cache
    /// key. Every field is folded in (a tagged, length-prefixed word
    /// stream, so permuted collections cannot collide structurally):
    /// specs differing in *any* field — seed, `k`, wire mode, thread
    /// count, fault plan, trace toggle — hash differently by
    /// construction. Threads and scheduling are included even though
    /// the engine's outputs are byte-identical across them: the service
    /// caches *runs*, and a run's identity is its full spec.
    pub fn canonical_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(1); // spec schema version
        h.word(self.algo.tag());
        h.word(self.k);
        h.word(self.seed);
        h.word(self.threads as u64);
        h.word(match self.scheduling {
            Scheduling::FullScan => 0,
            Scheduling::ActiveSet => 1,
        });
        h.word(u64::from(self.fast_forward));
        h.word(self.dense_pct as u64);
        h.word(self.shard_min as u64);
        h.word(u64::from(self.wire_exact));
        match self.exec {
            ExecSpec::Sync => h.word(0),
            ExecSpec::ReliableAlpha { max_delay } => {
                h.word(1);
                h.word(max_delay);
            }
        }
        h.word(u64::from(self.trace));
        let p = &self.faults;
        h.word(p.seed);
        h.word(p.drop_prob.to_bits());
        h.word(p.dup_prob.to_bits());
        h.word(p.max_extra_delay);
        h.word(p.crashes.len() as u64);
        for c in &p.crashes {
            h.word(c.node.0 as u64);
            h.word(c.at);
        }
        h.word(p.link_downs.len() as u64);
        for d in &p.link_downs {
            h.word(d.edge.0 as u64);
            h.word(d.from);
            h.word(d.until);
        }
        h.word(p.epochs.len() as u64);
        for e in &p.epochs {
            h.word(e.at);
            h.word(e.events.len() as u64);
            for ev in &e.events {
                h.str(ev.kind());
                let (a, b) = ev.endpoints();
                h.word(a);
                h.opt(b);
                h.opt(ev.weight());
            }
        }
        h.finish()
    }
}

/// Incremental FNV-1a over a tagged word stream (the same constants as
/// [`Graph::fingerprint`]).
struct Fnv(u64);

impl Fnv {
    const PRIME: u64 = 0x100_0000_01b3;

    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(Self::PRIME);
    }

    fn opt(&mut self, x: Option<u64>) {
        match x {
            None => self.word(0),
            Some(v) => {
                self.word(1);
                self.word(v);
            }
        }
    }

    fn str(&mut self, s: &str) {
        self.word(s.len() as u64);
        for b in s.bytes() {
            self.word(u64::from(b));
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------

/// The content address of a result: *what graph* (its canonical
/// topology fingerprint — the same value the socket handshake compares)
/// under *what spec* (its canonical hash). Two submissions with equal
/// keys are the same run; the second is served from the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Graph::fingerprint`] of the input graph.
    pub graph: u64,
    /// [`RunSpec::canonical_hash`] of the run spec.
    pub spec: u64,
}

impl CacheKey {
    /// The key for running `spec` on `graph`.
    pub fn of(graph: &Graph, spec: &RunSpec) -> Self {
        CacheKey {
            graph: graph.fingerprint(),
            spec: spec.canonical_hash(),
        }
    }
}

/// Everything a finished job produced: the engine's accounting, the
/// harvested per-node outputs (one `u64` per node, algorithm-defined),
/// and the captured JSONL trace lines when [`RunSpec::trace`] was set.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct JobOutput {
    /// The absorbed [`RunReport`] of the whole composition.
    pub report: RunReport,
    /// One harvested value per node, in node order. SimpleMST: parent
    /// port + 1 (0 = fragment root). FastDomG: the dominating center's
    /// application id. BFS: parent port + 1 (0 = the BFS root).
    pub outputs: Vec<u64>,
    /// The job's captured JSONL trace (empty when tracing was off).
    pub trace: Vec<String>,
}

impl JobOutput {
    /// The bytes this entry is charged against the cache budget.
    pub fn cost_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.outputs.len() * std::mem::size_of::<u64>()
            + self
                .trace
                .iter()
                .map(|l| l.len() + std::mem::size_of::<String>())
                .sum::<usize>()
    }
}

/// Running counters of a [`ResultCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries stored (including replacements).
    pub insertions: u64,
    /// Entries removed by the LRU byte-budget sweep.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged against the budget.
    pub bytes: usize,
}

struct CacheEntry {
    output: Arc<JobOutput>,
    bytes: usize,
    last_used: u64,
}

/// An in-memory LRU result cache under a byte budget.
///
/// Entries are shared (`Arc`), so a hit is a pointer clone — the
/// returned output is *byte-identical* to the one the original run
/// produced, trivially. An entry larger than the whole budget is not
/// cached at all (it would only evict everything else and then be
/// evicted itself on the next insert).
pub struct ResultCache {
    budget: usize,
    bytes: usize,
    tick: u64,
    map: HashMap<CacheKey, CacheEntry>,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache charging at most `budget` bytes.
    pub fn new(budget: usize) -> Self {
        ResultCache {
            budget,
            bytes: 0,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<JobOutput>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&e.output))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores `output` under `key` (replacing any previous entry), then
    /// evicts least-recently-used entries until the budget holds.
    pub fn insert(&mut self, key: CacheKey, output: Arc<JobOutput>) {
        let bytes = output.cost_bytes();
        if bytes > self.budget {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.insertions += 1;
        self.map.insert(
            key,
            CacheEntry {
                output,
                bytes,
                last_used: self.tick,
            },
        );
        while self.bytes > self.budget {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("bytes > 0 implies an entry");
            let e = self.map.remove(&victim).expect("just found");
            self.bytes -= e.bytes;
            self.evictions += 1;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.bytes,
        }
    }
}

// ---------------------------------------------------------------------
// Jobs and the pool
// ---------------------------------------------------------------------

/// The closure a [`JobPool`] executes per job: run `spec` on `graph`,
/// return the report and harvested outputs. The runner must not fill
/// [`JobOutput::trace`] — the pool installs each job's thread-scoped
/// trace policy around the call and harvests the captured lines itself.
///
/// Keeping the runner opaque keeps this crate below the algorithm
/// crates; `kdom_mst::service::runner()` is the production dispatcher.
pub type Runner = Arc<dyn Fn(&Graph, &RunSpec) -> Result<JobOutput, SimError> + Send + Sync>;

/// A snapshot of where a job is in its lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully.
    Done {
        /// Whether the result was served from the cache without
        /// invoking the engine.
        from_cache: bool,
    },
    /// The run failed; the string is the [`SimError`] (or panic)
    /// description.
    Failed(String),
}

enum State {
    Queued,
    Running,
    Done {
        output: Arc<JobOutput>,
        from_cache: bool,
    },
    Failed(String),
}

struct JobState {
    id: u64,
    key: CacheKey,
    spec: RunSpec,
    graph: Arc<Graph>,
    sink: MemorySink,
    state: Mutex<State>,
    done: Condvar,
}

/// A shareable handle to a submitted job.
#[derive(Clone)]
pub struct JobHandle {
    job: Arc<JobState>,
}

impl JobHandle {
    /// The pool-unique job id (submission order).
    pub fn id(&self) -> u64 {
        self.job.id
    }

    /// The spec this job runs.
    pub fn spec(&self) -> &RunSpec {
        &self.job.spec
    }

    /// The content address of this job's result.
    pub fn key(&self) -> CacheKey {
        self.job.key
    }

    /// Where the job is right now.
    pub fn status(&self) -> JobStatus {
        match &*lock(&self.job.state) {
            State::Queued => JobStatus::Queued,
            State::Running => JobStatus::Running,
            State::Done { from_cache, .. } => JobStatus::Done {
                from_cache: *from_cache,
            },
            State::Failed(e) => JobStatus::Failed(e.clone()),
        }
    }

    /// Blocks until the job finishes.
    ///
    /// # Errors
    ///
    /// Returns the failure description when the run errored or
    /// panicked.
    pub fn wait(&self) -> Result<Arc<JobOutput>, String> {
        let mut st = lock(&self.job.state);
        loop {
            match &*st {
                State::Done { output, .. } => return Ok(Arc::clone(output)),
                State::Failed(e) => return Err(e.clone()),
                _ => st = self.job.done.wait(st).unwrap_or_else(|p| p.into_inner()),
            }
        }
    }

    /// The result if the job already finished (`None` while queued or
    /// running).
    ///
    /// # Errors
    ///
    /// As [`JobHandle::wait`], when the finished job failed.
    #[allow(clippy::type_complexity)]
    pub fn try_output(&self) -> Option<Result<Arc<JobOutput>, String>> {
        match &*lock(&self.job.state) {
            State::Done { output, .. } => Some(Ok(Arc::clone(output))),
            State::Failed(e) => Some(Err(e.clone())),
            _ => None,
        }
    }

    /// The job's captured trace lines from index `from` on — the
    /// incremental read a streaming subscriber polls while the job
    /// runs. Empty unless the spec enabled tracing (cache-served jobs
    /// expose the cached [`JobOutput::trace`] instead).
    pub fn trace_lines_since(&self, from: usize) -> Vec<String> {
        self.job.sink.lines_since(from)
    }
}

/// Running counters of a [`JobPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs submitted, including cache-served ones.
    pub submitted: u64,
    /// Jobs completed by a worker (engine actually ran).
    pub completed: u64,
    /// Jobs that failed (error or panic).
    pub failed: u64,
    /// Times the runner was invoked — cache hits never increment this.
    pub engine_runs: u64,
    /// The result cache's counters.
    pub cache: CacheStats,
}

struct PoolInner {
    runner: Runner,
    cache: Mutex<ResultCache>,
    queue: Mutex<VecDeque<Arc<JobState>>>,
    work: Condvar,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    engine_runs: AtomicU64,
}

/// A bounded worker pool running independent simulations concurrently,
/// fronted by a content-addressed result cache.
///
/// Dropping the pool drains it: remaining queued jobs still run, then
/// the workers exit and are joined.
pub struct JobPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl JobPool {
    /// A pool with `workers` worker threads (at least 1) and a result
    /// cache charging at most `cache_budget` bytes.
    pub fn new(workers: usize, cache_budget: usize, runner: Runner) -> Self {
        let inner = Arc::new(PoolInner {
            runner,
            cache: Mutex::new(ResultCache::new(cache_budget)),
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            engine_runs: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("kdom-job-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker")
            })
            .collect();
        JobPool { inner, workers }
    }

    /// A pool sized by the environment: `KDOM_JOBS` worker threads
    /// (default 4, in `1..=256`) and a `KDOM_CACHE_BYTES` cache budget
    /// (default 64 MiB).
    ///
    /// # Panics
    ///
    /// Panics, naming the variable and the offending value, when a knob
    /// is set but malformed or out of range.
    pub fn from_env(runner: Runner) -> Self {
        let workers = kdom_graph::knob::knob_checked("KDOM_JOBS", 4usize, |&w| {
            if (1..=256).contains(&w) {
                Ok(())
            } else {
                Err("worker count must be in 1..=256".into())
            }
        });
        let budget = kdom_graph::knob::knob("KDOM_CACHE_BYTES", 64usize << 20);
        JobPool::new(workers, budget, runner)
    }

    /// Submits one run. Served instantly from the cache when the
    /// content address hits (status `Done { from_cache: true }`, zero
    /// engine invocations); queued for a worker otherwise.
    pub fn submit(&self, graph: Arc<Graph>, spec: RunSpec) -> JobHandle {
        let key = CacheKey::of(&graph, &spec);
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let cached = lock(&self.inner.cache).get(&key);
        let state = match cached {
            Some(output) => State::Done {
                output,
                from_cache: true,
            },
            None => State::Queued,
        };
        let queued = matches!(state, State::Queued);
        let job = Arc::new(JobState {
            id,
            key,
            spec,
            graph,
            sink: MemorySink::new(),
            state: Mutex::new(state),
            done: Condvar::new(),
        });
        if queued {
            lock(&self.inner.queue).push_back(Arc::clone(&job));
            self.inner.work.notify_one();
        }
        JobHandle { job }
    }

    /// Submits every run of a sweep (in the sweep's deterministic
    /// order), returning one handle per run.
    pub fn submit_sweep(&self, graph: &Arc<Graph>, sweep: &SweepSpec) -> Vec<JobHandle> {
        sweep
            .specs()
            .into_iter()
            .map(|spec| self.submit(Arc::clone(graph), spec))
            .collect()
    }

    /// Current counters (pool and cache).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            engine_runs: self.inner.engine_runs.load(Ordering::Relaxed),
            cache: lock(&self.inner.cache).stats(),
        }
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut q = lock(&inner.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = inner.work.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        };
        run_job(inner, &job);
    }
}

fn run_job(inner: &PoolInner, job: &JobState) {
    *lock(&job.state) = State::Running;
    let mode = if job.spec.trace {
        ThreadTrace::Capture(job.sink.clone())
    } else {
        ThreadTrace::Off
    };
    inner.engine_runs.fetch_add(1, Ordering::Relaxed);
    let result = trace::with_thread_trace(mode, || {
        std::panic::catch_unwind(AssertUnwindSafe(|| (inner.runner)(&job.graph, &job.spec)))
    });
    let state = match result {
        Ok(Ok(mut output)) => {
            output.trace = job.sink.lines_since(0);
            let output = Arc::new(output);
            lock(&inner.cache).insert(job.key, Arc::clone(&output));
            inner.completed.fetch_add(1, Ordering::Relaxed);
            State::Done {
                output,
                from_cache: false,
            }
        }
        Ok(Err(e)) => {
            inner.failed.fetch_add(1, Ordering::Relaxed);
            State::Failed(e.to_string())
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            inner.failed.fetch_add(1, Ordering::Relaxed);
            State::Failed(format!("job panicked: {msg}"))
        }
    };
    *lock(&job.state) = state;
    job.done.notify_all();
}

/// Runs one spec inline on the calling thread, with the same
/// thread-scoped trace policy a pool worker would install — the
/// reference a pool of any size must match byte-for-byte.
///
/// # Errors
///
/// Propagates the runner's [`SimError`].
pub fn run_serial(graph: &Graph, spec: &RunSpec, runner: &Runner) -> Result<JobOutput, SimError> {
    let sink = MemorySink::new();
    let mode = if spec.trace {
        ThreadTrace::Capture(sink.clone())
    } else {
        ThreadTrace::Off
    };
    let mut out = trace::with_thread_trace(mode, || runner(graph, spec))?;
    out.trace = sink.lines_since(0);
    Ok(out)
}

// ---------------------------------------------------------------------
// Sweeps
// ---------------------------------------------------------------------

/// A cross-product batch of runs: `base` with every combination of the
/// listed algorithms, `k` values, and seeds substituted. An empty axis
/// means "keep the base value". [`SweepSpec::specs`] enumerates the
/// product in a deterministic order (algorithm-major, then `k`, then
/// seed), so a sweep's handles line up with its serial reference run.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// The template every combination starts from.
    pub base: RunSpec,
    /// Algorithms to sweep (empty = just `base.algo`).
    pub algos: Vec<Algo>,
    /// `k` values to sweep (empty = just `base.k`).
    pub ks: Vec<u64>,
    /// Seeds to sweep (empty = just `base.seed`).
    pub seeds: Vec<u64>,
}

impl SweepSpec {
    /// A sweep of just `base` (grow it with the axis builders).
    pub fn new(base: RunSpec) -> Self {
        SweepSpec {
            base,
            algos: Vec::new(),
            ks: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// Returns the sweep with the algorithm axis replaced.
    pub fn over_algos(mut self, algos: &[Algo]) -> Self {
        self.algos = algos.to_vec();
        self
    }

    /// Returns the sweep with the `k` axis replaced.
    pub fn over_ks(mut self, ks: &[u64]) -> Self {
        self.ks = ks.to_vec();
        self
    }

    /// Returns the sweep with the seed axis replaced.
    pub fn over_seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Every run of the cross product, in deterministic order.
    pub fn specs(&self) -> Vec<RunSpec> {
        let algos = if self.algos.is_empty() {
            vec![self.base.algo]
        } else {
            self.algos.clone()
        };
        let ks = if self.ks.is_empty() {
            vec![self.base.k]
        } else {
            self.ks.clone()
        };
        let seeds = if self.seeds.is_empty() {
            vec![self.base.seed]
        } else {
            self.seeds.clone()
        };
        let mut out = Vec::with_capacity(algos.len() * ks.len() * seeds.len());
        for &algo in &algos {
            for &k in &ks {
                for &seed in &seeds {
                    out.push(self.base.clone().with_algo(algo).with_k(k).with_seed(seed));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::{path, GenConfig};

    fn toy_graph(n: usize) -> Arc<Graph> {
        Arc::new(path(&GenConfig::with_seed(n, 7)))
    }

    /// A deterministic stand-in for the algorithm dispatcher: emits one
    /// phase marker (so trace capture is observable) and derives the
    /// outputs from the spec and graph.
    fn toy_runner() -> Runner {
        Arc::new(|g, spec| {
            trace::emit_phase("Toy");
            Ok(JobOutput {
                report: RunReport {
                    rounds: spec.seed + spec.k + 1,
                    messages: g.node_count() as u64,
                    ..RunReport::default()
                },
                outputs: (0..g.node_count() as u64)
                    .map(|v| v.wrapping_mul(31) ^ spec.seed)
                    .collect(),
                trace: Vec::new(),
            })
        })
    }

    #[test]
    fn canonical_hash_separates_every_advertised_field() {
        let base = RunSpec::default();
        let variants = [
            base.clone().with_seed(1),
            base.clone().with_k(1),
            base.clone().with_wire_exact(!base.wire_exact),
            base.clone().with_threads(2),
            base.clone().with_algo(Algo::Bfs),
            base.clone().with_scheduling(Scheduling::FullScan),
            base.clone()
                .with_exec(ExecSpec::ReliableAlpha { max_delay: 4 }),
            base.clone().with_faults(FaultPlan::new(0).drop_prob(0.1)),
            base.clone().with_trace(true),
        ];
        let h0 = base.canonical_hash();
        assert_eq!(h0, base.clone().canonical_hash(), "hash must be stable");
        for v in &variants {
            assert_ne!(v.canonical_hash(), h0, "collision for {v:?}");
        }
    }

    #[test]
    fn cached_resubmission_skips_the_engine() {
        let pool = JobPool::new(2, 1 << 20, toy_runner());
        let g = toy_graph(16);
        let spec = RunSpec::default().with_seed(5);
        let first = pool.submit(Arc::clone(&g), spec.clone());
        let out1 = first.wait().expect("first run");
        assert_eq!(first.status(), JobStatus::Done { from_cache: false });
        let second = pool.submit(Arc::clone(&g), spec);
        assert_eq!(second.status(), JobStatus::Done { from_cache: true });
        let out2 = second.wait().expect("cached run");
        assert!(Arc::ptr_eq(&out1, &out2), "a hit is the same entry");
        let stats = pool.stats();
        assert_eq!(stats.engine_runs, 1, "the engine ran exactly once");
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
    }

    #[test]
    fn per_job_trace_capture_is_isolated() {
        let pool = JobPool::new(2, 1 << 20, toy_runner());
        let g = toy_graph(8);
        let traced = pool.submit(Arc::clone(&g), RunSpec::default().with_trace(true));
        let silent = pool.submit(Arc::clone(&g), RunSpec::default().with_seed(9));
        let t = traced.wait().expect("traced run");
        let s = silent.wait().expect("silent run");
        assert_eq!(t.trace.len(), 1, "one phase marker captured");
        assert!(t.trace[0].contains("\"label\":\"Toy\""));
        assert!(s.trace.is_empty(), "tracing off captures nothing");
        assert_eq!(traced.trace_lines_since(0).len(), 1);
        assert!(traced.trace_lines_since(1).is_empty());
    }

    #[test]
    fn pool_outputs_match_serial_execution() {
        let runner = toy_runner();
        let g = toy_graph(12);
        let sweep = SweepSpec::new(RunSpec::default())
            .over_algos(&[Algo::SimpleMst, Algo::Bfs])
            .over_seeds(&[1, 2, 3]);
        let pool = JobPool::new(3, 1 << 20, Arc::clone(&runner));
        let handles = pool.submit_sweep(&g, &sweep);
        assert_eq!(handles.len(), 6);
        for (handle, spec) in handles.iter().zip(sweep.specs()) {
            assert_eq!(*handle.spec(), spec, "sweep order is deterministic");
            let pooled = handle.wait().expect("pooled run");
            let serial = run_serial(&g, &spec, &runner).expect("serial run");
            assert_eq!(*pooled, serial, "pool must match serial byte-for-byte");
        }
    }

    #[test]
    fn sweep_axes_default_to_the_base_value() {
        let base = RunSpec::default().with_k(3).with_seed(11);
        let specs = SweepSpec::new(base.clone()).specs();
        assert_eq!(specs, vec![base.clone()]);
        let specs = SweepSpec::new(base.clone()).over_ks(&[1, 2]).specs();
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.seed == 11));
        assert_eq!(specs[0].k, 1);
        assert_eq!(specs[1].k, 2);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let sample = Arc::new(JobOutput {
            outputs: vec![0; 8],
            ..JobOutput::default()
        });
        let one = sample.cost_bytes();
        let mut cache = ResultCache::new(2 * one);
        let key = |i: u64| CacheKey { graph: i, spec: 0 };
        cache.insert(key(1), Arc::clone(&sample));
        cache.insert(key(2), Arc::clone(&sample));
        assert!(cache.get(&key(1)).is_some(), "refresh 1's recency");
        cache.insert(key(3), Arc::clone(&sample));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= 2 * one);
        assert!(cache.get(&key(2)).is_none(), "2 was least recently used");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());

        // an entry larger than the whole budget is not cached
        let mut tiny = ResultCache::new(1);
        tiny.insert(key(9), Arc::clone(&sample));
        assert_eq!(tiny.stats().entries, 0);
    }

    #[test]
    fn panicking_jobs_fail_without_killing_the_worker() {
        let runner: Runner = Arc::new(|_, spec| {
            assert!(spec.k != 7, "k=7 is cursed");
            Ok(JobOutput::default())
        });
        let pool = JobPool::new(1, 1 << 20, runner);
        let g = toy_graph(4);
        let bad = pool.submit(Arc::clone(&g), RunSpec::default().with_k(7));
        let err = bad.wait().expect_err("panic surfaces as failure");
        assert!(err.contains("cursed"), "{err}");
        assert_eq!(bad.status(), JobStatus::Failed(err));
        // the same (sole) worker still serves the next job
        let good = pool.submit(Arc::clone(&g), RunSpec::default());
        good.wait().expect("worker survived the panic");
        let stats = pool.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn algo_labels_round_trip() {
        for algo in Algo::ALL {
            assert_eq!(Algo::parse(algo.label()), Some(algo));
            assert_eq!(algo.label().parse::<Algo>().ok(), Some(algo));
        }
        assert!(Algo::parse("frobnicate").is_none());
        assert!("frobnicate".parse::<Algo>().is_err());
    }
}
