//! Chaos harness: seeded random fault + churn schedules and a shrinker.
//!
//! The harness is split across two layers. This module owns the
//! protocol-agnostic machinery — generating a valid [`FaultPlan`] full of
//! churn epochs against an evolving topology, and shrinking a failing
//! schedule to a minimal reproducer. The oracle-coupled driver (which
//! protocols to run, what "failing" means) lives in the facade crate's
//! `tests/chaos.rs`, because the sequential oracles live above this
//! crate in the dependency graph.
//!
//! Every generated schedule is a pure function of `(base graph, config,
//! seed)`: re-running a seed reproduces the exact schedule, which is
//! what makes the shrinker's verdicts meaningful. Generated events are
//! *valid by construction* — each one is accepted by
//! [`apply_churn`](crate::faults::apply_churn) against the topology the
//! preceding events produce, and node leaves / edge removals are only
//! emitted when they keep the graph connected (the protocols under test
//! assume a connected input).
//!
//! The shrinker ([`shrink`]) is a greedy delta-debugging loop: it
//! repeatedly removes chunks of churn events (halving the chunk size as
//! removals stop reproducing the failure), drops epochs that become
//! empty, and finally tries to zero out the transient-fault knobs. The
//! caller's `still_fails` closure decides reproduction; a candidate
//! whose event list no longer applies cleanly should simply return
//! `false` there (the failure is then kept attached to the larger,
//! still-valid schedule).

use std::collections::VecDeque;
use std::fmt;

use kdom_graph::{Graph, NodeId};
use kdom_rng::StdRng;

use crate::faults::{apply_churn, ChurnEpoch, ChurnEvent, FaultPlan};

/// Environment prefix for the chaos knobs (`KDOM_CHAOS_*`).
pub const CHAOS_ENV_PREFIX: &str = "KDOM_CHAOS_";

/// Tunables of the chaos generator, fillable from `KDOM_CHAOS_*`.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Number of seeded schedules a sweep runs (`KDOM_CHAOS_SCHEDULES`).
    pub schedules: usize,
    /// Churn epochs per schedule (`KDOM_CHAOS_EPOCHS`).
    pub epochs: usize,
    /// Events attempted per epoch (`KDOM_CHAOS_EVENTS`); an epoch may
    /// end up smaller when the topology runs out of valid candidates.
    pub events_per_epoch: usize,
    /// Base seed of the sweep (`KDOM_CHAOS_SEED`); schedule `i` uses
    /// `seed + i`.
    pub seed: u64,
    /// Message-loss probability of every schedule (`KDOM_CHAOS_DROP`).
    pub drop_prob: f64,
    /// Message-duplication probability (`KDOM_CHAOS_DUP`).
    pub dup_prob: f64,
    /// Largest random gap between a segment's entry and its epoch
    /// boundary (`KDOM_CHAOS_GAP`); boundaries are drawn from
    /// `1..=max_gap`.
    pub max_gap: u64,
    /// Directory for failure artifacts — minimal seed and JSONL trace —
    /// written by the nightly driver (`KDOM_CHAOS_DIR`); `None` skips
    /// artifact writing.
    pub artifact_dir: Option<String>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            schedules: 50,
            epochs: 3,
            events_per_epoch: 4,
            seed: 0xC0FFEE,
            drop_prob: 0.1,
            dup_prob: 0.05,
            max_gap: 12,
            artifact_dir: None,
        }
    }
}

impl ChaosConfig {
    /// Reads the `KDOM_CHAOS_*` knobs, falling back to the defaults for
    /// unset (or empty) values.
    ///
    /// # Panics
    ///
    /// Panics, naming the variable and the offending value, when a knob
    /// is set but does not parse (via [`kdom_graph::knob`]) — a sweep
    /// invoked with `KDOM_CHAOS_SCHEDULES=abc` must not silently run the
    /// 50-schedule default and report success.
    pub fn from_env() -> Self {
        use kdom_graph::knob::knob;
        let d = ChaosConfig::default();
        ChaosConfig {
            schedules: knob("KDOM_CHAOS_SCHEDULES", d.schedules),
            epochs: knob("KDOM_CHAOS_EPOCHS", d.epochs),
            events_per_epoch: knob("KDOM_CHAOS_EVENTS", d.events_per_epoch),
            seed: knob("KDOM_CHAOS_SEED", d.seed),
            drop_prob: knob("KDOM_CHAOS_DROP", d.drop_prob),
            dup_prob: knob("KDOM_CHAOS_DUP", d.dup_prob),
            max_gap: knob("KDOM_CHAOS_GAP", d.max_gap),
            artifact_dir: kdom_graph::knob::raw("KDOM_CHAOS_DIR"),
        }
    }
}

/// Which churn events the generator may emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventMix {
    /// Every event kind: leaves, joins, weight changes, edge churn.
    Full,
    /// Only [`ChurnEvent::EdgeWeightChange`] — for protocols whose
    /// topology must stay fixed (e.g. the partition runs on a tree whose
    /// shape the cluster engine owns).
    WeightOnly,
}

/// One seeded random schedule: the plan to run and the seed that
/// regenerates it.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSchedule {
    /// The seed this schedule was generated from.
    pub seed: u64,
    /// Transient faults plus churn epochs, ready for the epoch driver.
    pub plan: FaultPlan,
}

impl ChaosSchedule {
    /// Total churn events across all epochs.
    pub fn event_count(&self) -> usize {
        self.plan.epochs.iter().map(|e| e.events.len()).sum()
    }

    /// One-line human summary, printed in failure reports.
    pub fn describe(&self) -> String {
        format!(
            "seed {}: {} epoch(s) / {} event(s), drop {}, dup {}",
            self.seed,
            self.plan.epochs.len(),
            self.event_count(),
            self.plan.drop_prob,
            self.plan.dup_prob,
        )
    }
}

impl fmt::Display for ChaosSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Whether `g` is connected (BFS from node 0; the empty graph counts as
/// connected).
fn connected(g: &Graph) -> bool {
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut q = VecDeque::from([NodeId(0)]);
    seen[0] = true;
    let mut reached = 1;
    while let Some(v) = q.pop_front() {
        for a in g.neighbors(v) {
            if !seen[a.to.0] {
                seen[a.to.0] = true;
                reached += 1;
                q.push_back(a.to);
            }
        }
    }
    reached == n
}

fn max_id(g: &Graph) -> u64 {
    g.nodes().map(|v| g.id_of(v)).max().unwrap_or(0)
}

fn max_weight(g: &Graph) -> u64 {
    g.edges().iter().map(|e| e.weight).max().unwrap_or(0)
}

/// Draws one candidate event against `cur`; `None` when the drawn kind
/// has no valid candidate in this topology.
fn draw_event(rng: &mut StdRng, cur: &Graph, mix: EventMix) -> Option<ChurnEvent> {
    let n = cur.node_count();
    let m = cur.edge_count();
    let kind = match mix {
        EventMix::WeightOnly => 2,
        EventMix::Full => rng.below(5),
    };
    match kind {
        // node_leave: only from graphs that stay non-trivial
        0 if n > 2 => {
            let v = NodeId(rng.below(n as u64) as usize);
            Some(ChurnEvent::NodeLeave { id: cur.id_of(v) })
        }
        // node_join: 1..=3 links to distinct existing nodes
        1 => {
            let id = max_id(cur) + 1;
            let deg = 1 + rng.below(3.min(n as u64)) as usize;
            let mut targets: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut targets);
            let w0 = max_weight(cur);
            let links = targets[..deg]
                .iter()
                .enumerate()
                .map(|(i, &t)| (cur.id_of(NodeId(t)), w0 + 1 + i as u64))
                .collect();
            Some(ChurnEvent::NodeJoin { id, links })
        }
        // weight_change: re-weight a random edge with a fresh weight
        2 if m > 0 => {
            let e = &cur.edges()[rng.below(m as u64) as usize];
            Some(ChurnEvent::EdgeWeightChange {
                a: cur.id_of(e.u),
                b: cur.id_of(e.v),
                weight: max_weight(cur) + 1,
            })
        }
        // edge_insert: a random non-adjacent pair
        3 if n >= 2 => {
            for _ in 0..8 {
                let u = NodeId(rng.below(n as u64) as usize);
                let v = NodeId(rng.below(n as u64) as usize);
                if u != v && cur.edge_between(u, v).is_none() {
                    return Some(ChurnEvent::EdgeInsert {
                        a: cur.id_of(u),
                        b: cur.id_of(v),
                        weight: max_weight(cur) + 1,
                    });
                }
            }
            None
        }
        // edge_remove: a random edge (the connectivity gate is applied
        // by the caller, which tries the event against the real graph)
        4 if m > 0 => {
            let e = &cur.edges()[rng.below(m as u64) as usize];
            Some(ChurnEvent::EdgeRemove {
                a: cur.id_of(e.u),
                b: cur.id_of(e.v),
            })
        }
        _ => None,
    }
}

/// Generates up to `count` valid events forming one epoch, returning the
/// events and the topology they produce. Every event is validated by
/// actually applying it; candidates that fail validation or disconnect
/// the graph are discarded (up to a bounded number of redraws).
pub fn random_epoch(
    rng: &mut StdRng,
    start: &Graph,
    count: usize,
    mix: EventMix,
) -> (Vec<ChurnEvent>, Graph) {
    let mut cur = start.clone();
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        for _attempt in 0..16 {
            let Some(ev) = draw_event(rng, &cur, mix) else {
                continue;
            };
            if let Ok((next, _)) = apply_churn(&cur, std::slice::from_ref(&ev)) {
                if connected(&next) {
                    events.push(ev);
                    cur = next;
                    break;
                }
            }
        }
    }
    (events, cur)
}

/// Generates the full schedule for one seed: transient faults from the
/// config plus `cfg.epochs` churn epochs, each valid against the
/// topology produced by its predecessors.
pub fn gen_schedule(base: &Graph, cfg: &ChaosConfig, seed: u64) -> ChaosSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plan = FaultPlan::new(seed)
        .drop_prob(cfg.drop_prob)
        .dup_prob(cfg.dup_prob);
    let mut cur = base.clone();
    let mut at = 0u64;
    for _ in 0..cfg.epochs {
        let (events, next) = random_epoch(&mut rng, &cur, cfg.events_per_epoch, EventMix::Full);
        at += 1 + rng.below(cfg.max_gap.max(1));
        if events.is_empty() {
            continue;
        }
        plan = plan.epoch(at, events);
        cur = next;
    }
    ChaosSchedule { seed, plan }
}

/// Like [`gen_schedule`] but restricted to an [`EventMix`].
pub fn gen_schedule_with_mix(
    base: &Graph,
    cfg: &ChaosConfig,
    seed: u64,
    mix: EventMix,
) -> ChaosSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plan = FaultPlan::new(seed)
        .drop_prob(cfg.drop_prob)
        .dup_prob(cfg.dup_prob);
    let mut cur = base.clone();
    let mut at = 0u64;
    for _ in 0..cfg.epochs {
        let (events, next) = random_epoch(&mut rng, &cur, cfg.events_per_epoch, mix);
        at += 1 + rng.below(cfg.max_gap.max(1));
        if events.is_empty() {
            continue;
        }
        plan = plan.epoch(at, events);
        cur = next;
    }
    ChaosSchedule { seed, plan }
}

/// What the shrinker did to a failing schedule.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The smallest schedule that still reproduces the failure.
    pub schedule: ChaosSchedule,
    /// Candidate schedules tried (each one cost a `still_fails` call).
    pub attempts: usize,
    /// Churn events before shrinking.
    pub events_before: usize,
    /// Churn events in the minimal schedule.
    pub events_after: usize,
}

impl ShrinkReport {
    /// One-line human summary for failure reports.
    pub fn describe(&self) -> String {
        format!(
            "shrunk {} -> {} event(s) in {} attempt(s); minimal reproducer: {}",
            self.events_before,
            self.events_after,
            self.attempts,
            self.schedule.describe()
        )
    }
}

/// Flattens a plan's epochs into `(at, event)` pairs, in epoch order.
fn flatten(plan: &FaultPlan) -> Vec<(u64, ChurnEvent)> {
    plan.epochs
        .iter()
        .flat_map(|e| e.events.iter().map(move |ev| (e.at, ev.clone())))
        .collect()
}

/// Rebuilds a schedule from a flattened subset, dropping epochs that
/// lost all their events.
fn rebuild(base: &ChaosSchedule, flat: &[(u64, ChurnEvent)]) -> ChaosSchedule {
    let mut epochs: Vec<ChurnEpoch> = Vec::new();
    for (at, ev) in flat {
        match epochs.last_mut() {
            Some(last) if last.at == *at => last.events.push(ev.clone()),
            _ => epochs.push(ChurnEpoch {
                at: *at,
                events: vec![ev.clone()],
            }),
        }
    }
    ChaosSchedule {
        seed: base.seed,
        plan: FaultPlan {
            epochs,
            ..base.plan.clone()
        },
    }
}

/// Shrinks a failing schedule to a minimal reproducer.
///
/// Greedy delta debugging over the churn events: chunks of events are
/// removed (chunk size halving from `len/2` down to 1) and a removal is
/// kept whenever `still_fails` still reproduces the failure; epochs that
/// lose all events disappear. A final pass tries zeroing the transient
/// knobs (`drop_prob`, `dup_prob`, `max_extra_delay`) and clearing the
/// crash / link-down schedules. At most `max_attempts` candidates are
/// tried; the loop also stops once a full sweep at chunk size 1 removes
/// nothing.
///
/// `still_fails` must be a pure function of the schedule (re-run the
/// deterministic reproduction, return whether it still fails). A
/// candidate whose events no longer apply cleanly to the base graph
/// should return `false`.
pub fn shrink<F>(failing: &ChaosSchedule, mut still_fails: F, max_attempts: usize) -> ShrinkReport
where
    F: FnMut(&ChaosSchedule) -> bool,
{
    let mut best = failing.clone();
    let events_before = best.event_count();
    let mut attempts = 0usize;

    let mut flat = flatten(&best.plan);
    let mut chunk = (flat.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < flat.len() && attempts < max_attempts {
            let hi = (i + chunk).min(flat.len());
            let mut cand_flat = flat.clone();
            cand_flat.drain(i..hi);
            let cand = rebuild(&best, &cand_flat);
            attempts += 1;
            if still_fails(&cand) {
                flat = cand_flat;
                best = cand;
                removed_any = true;
                // do not advance: the next chunk slid into position i
            } else {
                i = hi;
            }
        }
        if attempts >= max_attempts || (chunk == 1 && !removed_any) || flat.is_empty() {
            break;
        }
        chunk = (chunk / 2).max(1);
    }

    // Transient-fault reduction: each knob zeroed independently, kept
    // only when the failure survives without it.
    let mut try_plan = |mutate: &dyn Fn(&mut FaultPlan), best: &mut ChaosSchedule| {
        if attempts >= max_attempts {
            return;
        }
        let mut cand = best.clone();
        mutate(&mut cand.plan);
        if cand.plan == best.plan {
            return;
        }
        attempts += 1;
        if still_fails(&cand) {
            *best = cand;
        }
    };
    try_plan(&|p| p.drop_prob = 0.0, &mut best);
    try_plan(&|p| p.dup_prob = 0.0, &mut best);
    try_plan(&|p| p.max_extra_delay = 0, &mut best);
    try_plan(&|p| p.crashes.clear(), &mut best);
    try_plan(&|p| p.link_downs.clear(), &mut best);

    let events_after = best.event_count();
    ShrinkReport {
        schedule: best,
        attempts,
        events_before,
        events_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::GraphBuilder;

    fn ring(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        b.ids((0..n as u64).map(|i| 100 + i).collect());
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n), 1 + i as u64);
        }
        b.build()
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let g = ring(8);
        let cfg = ChaosConfig::default();
        let s1 = gen_schedule(&g, &cfg, 7);
        let s2 = gen_schedule(&g, &cfg, 7);
        assert_eq!(s1, s2, "same seed must regenerate the same schedule");
        assert!(!s1.plan.epochs.is_empty());
        // every epoch applies cleanly in sequence and keeps the graph
        // connected
        let mut cur = g.clone();
        for ep in &s1.plan.epochs {
            let (next, _) = apply_churn(&cur, &ep.events).expect("generated events are valid");
            assert!(connected(&next));
            cur = next;
        }
        let s3 = gen_schedule(&g, &cfg, 8);
        assert_ne!(s1, s3, "different seeds should differ");
    }

    #[test]
    fn weight_only_mix_changes_no_topology() {
        let g = ring(6);
        let cfg = ChaosConfig::default();
        let s = gen_schedule_with_mix(&g, &cfg, 3, EventMix::WeightOnly);
        let mut cur = g.clone();
        for ep in &s.plan.epochs {
            for ev in &ep.events {
                assert!(matches!(ev, ChurnEvent::EdgeWeightChange { .. }));
            }
            let (next, remap) = apply_churn(&cur, &ep.events).unwrap();
            assert_eq!(next.node_count(), cur.node_count());
            assert_eq!(next.edge_count(), cur.edge_count());
            assert!(remap.old_to_new.iter().all(|m| m.is_some()));
            cur = next;
        }
    }

    #[test]
    fn shrinker_isolates_a_single_culprit_event() {
        let g = ring(10);
        let cfg = ChaosConfig {
            epochs: 25,
            events_per_epoch: 4,
            ..ChaosConfig::default()
        };
        let sched = gen_schedule(&g, &cfg, 11);
        assert!(
            sched.event_count() >= 50,
            "need a big schedule, got {}",
            sched.event_count()
        );
        // Synthetic bug: the run "fails" iff the schedule still contains
        // a node_leave event. The shrinker must isolate one.
        let is_leave = |s: &ChaosSchedule| {
            s.plan
                .epochs
                .iter()
                .flat_map(|e| &e.events)
                .any(|ev| matches!(ev, ChurnEvent::NodeLeave { .. }))
        };
        assert!(is_leave(&sched), "schedule should contain a leave");
        let report = shrink(&sched, is_leave, 10_000);
        assert_eq!(report.events_after, 1, "{}", report.describe());
        assert!(is_leave(&report.schedule));
        assert_eq!(report.schedule.plan.epochs.len(), 1);
        // probabilities were not needed to reproduce, so they were shed
        assert_eq!(report.schedule.plan.drop_prob, 0.0);
        assert_eq!(report.schedule.plan.dup_prob, 0.0);
    }

    #[test]
    fn shrinker_respects_the_attempt_budget() {
        let g = ring(8);
        let sched = gen_schedule(&g, &ChaosConfig::default(), 5);
        let mut calls = 0usize;
        let report = shrink(
            &sched,
            |_| {
                calls += 1;
                true
            },
            3,
        );
        assert!(calls <= 3, "{calls} calls exceed the budget");
        assert!(report.attempts <= 3);
    }

    #[test]
    fn shrink_of_non_reproducing_schedule_is_identity() {
        let g = ring(6);
        let sched = gen_schedule(&g, &ChaosConfig::default(), 9);
        let report = shrink(&sched, |_| false, 1_000);
        assert_eq!(report.schedule, sched);
        assert_eq!(report.events_before, report.events_after);
    }
}
