//! Wall-clock bench behind E3: distributed BalancedDOM (CV + MIS + fix-ups).

use kdom_bench::harness::Criterion;
use kdom_bench::{criterion_group, criterion_main};
use kdom_congest::Port;
use kdom_core::dist::coloring::{BalancedConfig, BalancedNode};
use kdom_graph::generators::Family;
use kdom_graph::{NodeId, RootedTree};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("balanced_dom");
    for n in [256usize, 1024, 4096] {
        let graph = Family::RandomTree.generate(n, 29);
        let tree = RootedTree::from_graph(&graph, NodeId(0));
        g.bench_function(format!("random-tree/n{n}"), |b| {
            b.iter(|| {
                let port_to = |v: NodeId, to: NodeId| {
                    Port(graph.neighbors(v).iter().position(|a| a.to == to).unwrap())
                };
                let nodes: Vec<BalancedNode> = (0..n)
                    .map(|v| {
                        let v = NodeId(v);
                        BalancedNode::new(BalancedConfig {
                            parent: tree.parent(v).map(|p| port_to(v, p)),
                            children: tree.children(v).iter().map(|&c| port_to(v, c)).collect(),
                            id_bits: 48,
                        })
                    })
                    .collect();
                kdom_congest::run_protocol(std::hint::black_box(&graph), nodes, 10_000).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
