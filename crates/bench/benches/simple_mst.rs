//! Wall-clock bench behind E7: the distributed SimpleMST fragment growth.

use kdom_bench::harness::Criterion;
use kdom_bench::{criterion_group, criterion_main};
use kdom_core::dist::fragments::run_simple_mst;
use kdom_graph::generators::Family;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("simple_mst");
    let graph = Family::Grid.generate(400, 43);
    for k in [3usize, 15, 31] {
        g.bench_function(format!("grid/n400/k{k}"), |b| {
            b.iter(|| run_simple_mst(std::hint::black_box(&graph), k))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
