//! Wall-clock bench behind E4/E5: the DOMPartition family.

use kdom_bench::harness::Criterion;
use kdom_bench::{criterion_group, criterion_main};
use kdom_core::partition::{dom_partition, dom_partition_1, dom_partition_2};
use kdom_graph::generators::Family;
use kdom_graph::NodeId;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dom_partition");
    let graph = Family::RandomTree.generate(1024, 31);
    let nodes: Vec<NodeId> = graph.nodes().collect();
    let edges: Vec<(NodeId, NodeId)> = graph.edges().iter().map(|e| (e.u, e.v)).collect();
    for k in [4usize, 16] {
        g.bench_function(format!("variant1/k{k}"), |b| {
            b.iter(|| dom_partition_1(&graph, nodes.clone(), &edges, k))
        });
        g.bench_function(format!("variant2/k{k}"), |b| {
            b.iter(|| dom_partition_2(&graph, nodes.clone(), &edges, k))
        });
        g.bench_function(format!("full/k{k}"), |b| {
            b.iter(|| dom_partition(&graph, nodes.clone(), &edges, k))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
