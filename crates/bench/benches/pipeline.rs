//! Wall-clock bench behind E9/E11: the pipelined convergecast and its
//! barrier ablation.

use kdom_bench::harness::Criterion;
use kdom_bench::{criterion_group, criterion_main};
use kdom_graph::generators::Family;
use kdom_graph::NodeId;
use kdom_mst::pipeline::run_pipeline;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    for fam in [Family::RandomTree, Family::Grid] {
        let graph = fam.generate(256, 53);
        let clusters: Vec<u64> = graph.nodes().map(|v| graph.id_of(v)).collect();
        g.bench_function(format!("{fam}/pipelined"), |b| {
            b.iter(|| {
                run_pipeline(
                    std::hint::black_box(&graph),
                    NodeId(0),
                    &clusters,
                    true,
                    false,
                )
            })
        });
        g.bench_function(format!("{fam}/barrier"), |b| {
            b.iter(|| {
                run_pipeline(
                    std::hint::black_box(&graph),
                    NodeId(0),
                    &clusters,
                    true,
                    true,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
