//! Wall-clock bench of the recovery stack: protocols over the reliable α
//! transport at increasing per-link loss rates. Quantifies what the
//! reliability assumption is worth — the 0% row is the pure synchronizer
//! overhead, the lossy rows add ARQ timers and retransmissions.

use kdom_bench::harness::Criterion;
use kdom_bench::{criterion_group, criterion_main};
use kdom_congest::{run_protocol_alpha_reliable, FaultPlan};
use kdom_core::dist::bfs::BfsNode;
use kdom_core::dist::election::ElectionNode;
use kdom_graph::generators::Family;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("lossy");
    let graph = Family::Gnp.generate(120, 47);
    for loss_pct in [0u32, 10, 30] {
        let plan = FaultPlan::new(u64::from(loss_pct) + 1).drop_prob(f64::from(loss_pct) / 100.0);
        g.bench_function(format!("bfs/n120/loss{loss_pct}"), |b| {
            b.iter(|| {
                let nodes = (0..graph.node_count())
                    .map(|v| BfsNode::new(v == 0))
                    .collect();
                run_protocol_alpha_reliable(
                    std::hint::black_box(&graph),
                    nodes,
                    7,
                    2,
                    &plan,
                    1_000_000,
                )
                .unwrap()
            })
        });
        g.bench_function(format!("election/n120/loss{loss_pct}"), |b| {
            b.iter(|| {
                let nodes = (0..graph.node_count())
                    .map(|_| ElectionNode::new())
                    .collect();
                run_protocol_alpha_reliable(
                    std::hint::black_box(&graph),
                    nodes,
                    7,
                    2,
                    &plan,
                    1_000_000,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
