//! Wall-clock bench behind E6/E8: FastDOM_T and FastDOM_G.

use kdom_bench::harness::Criterion;
use kdom_bench::{criterion_group, criterion_main};
use kdom_core::fastdom::{fast_dom_g, fast_dom_t, WithinCluster};
use kdom_graph::generators::Family;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fastdom");
    let tree = Family::RandomTree.generate(1024, 41);
    for k in [3usize, 8] {
        g.bench_function(format!("tree/n1024/k{k}"), |b| {
            b.iter(|| fast_dom_t(std::hint::black_box(&tree), k, WithinCluster::OptimalDp))
        });
    }
    let graph = Family::Gnp.generate(512, 47);
    for k in [3usize, 8] {
        g.bench_function(format!("graph/n512/k{k}"), |b| {
            b.iter(|| fast_dom_g(std::hint::black_box(&graph), k))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
