//! Engine scaling bench: the shared round engine against the pre-refactor
//! reference loop, across schedulers and thread counts.
//!
//! Produces `BENCH_engine.json` at the repo root (median wall-clock and
//! rounds/second per target). Every engine leg is asserted byte-identical
//! to the reference loop before being timed, so the speedups are over
//! equivalent work. `KDOM_THREADS=4` legs only show wall-clock gains on
//! multi-core hosts; on a single core they measure the determinism
//! overhead instead.

use kdom_bench::harness::{
    can_bench_threads, check_regression_gate, note_extra, note_mode, note_rounds,
    record_measurement, write_engine_json, Criterion, Histogram,
};
use kdom_bench::{criterion_group, criterion_main};
use kdom_congest::engine::run_reference_loop;
use kdom_congest::{CodecScratch, EngineConfig, Scheduling, Simulator};
use kdom_core::dist::bfs::BfsNode;
use kdom_core::dist::fragments::{FrMsg, FragmentNode};
use kdom_graph::generators::Family;
use kdom_graph::Graph;
use kdom_mst::fastmst::fast_mst;

fn mst_nodes(g: &Graph, k: usize) -> Vec<FragmentNode> {
    g.nodes()
        .map(|v| FragmentNode::new(k, g.id_of(v)))
        .collect()
}

/// The historical zero-copy engine configuration. Wire-exact became the
/// engine default, so the long-standing leg names (`active-set-1t`, …)
/// pin it **off** to keep measuring what they always measured; the
/// explicit `-wire-exact` legs measure the codec on top.
fn engine_cfg(sched: Scheduling, threads: usize) -> EngineConfig {
    EngineConfig::default()
        .with_scheduling(sched)
        .with_threads(threads)
        .with_wire_exact(false)
}

/// BFS on a 2000-node path: diameter-bound rounds where only the frontier
/// does work — the showcase for active-set scheduling (the full scan
/// burns `n` automaton steps per round on idle nodes).
fn bench_bfs_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/bfs_path2000");
    let graph = Family::Path.generate(2000, 0);
    let make =
        |g: &Graph| -> Vec<BfsNode> { (0..g.node_count()).map(|v| BfsNode::new(v == 0)).collect() };

    let (ref_nodes, ref_report) =
        run_reference_loop(&graph, make(&graph), 1_000_000).expect("reference quiesces");
    let want = format!("{ref_nodes:?}{ref_report:?}");
    let legs = [
        ("legacy-loop", None),
        ("full-scan-1t", Some(engine_cfg(Scheduling::FullScan, 1))),
        ("active-set-1t", Some(engine_cfg(Scheduling::ActiveSet, 1))),
    ];
    for (leg, cfg) in legs {
        if let Some(cfg) = cfg {
            let mut sim = Simulator::with_config(&graph, make(&graph), cfg);
            sim.run(1_000_000).expect("engine quiesces");
            // the reference loop predates memory tracking: zero the peak
            // before the comparison, everything else must match exactly
            let mut report = sim.report().clone();
            report.peak_memory_bytes = 0;
            let got = format!("{:?}{report:?}", sim.nodes());
            assert_eq!(want, got, "{leg} diverged from the reference loop");
        }
        g.bench_function(leg, |b| match cfg {
            None => {
                b.iter(|| run_reference_loop(std::hint::black_box(&graph), make(&graph), 1_000_000))
            }
            Some(cfg) => b.iter(|| {
                let mut sim =
                    Simulator::with_config(std::hint::black_box(&graph), make(&graph), cfg);
                sim.run(1_000_000).map(|r| r.rounds)
            }),
        });
        note_rounds(&format!("engine/bfs_path2000/{leg}"), ref_report.rounds);
        note_mode(&format!("engine/bfs_path2000/{leg}"), "zero-copy");
    }
    g.finish();
}

/// SimpleMST on a ~2500-node grid: the round-schedule-heavy protocol the
/// active set helps most (late rounds have few live fragments).
fn bench_simple_mst(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/simple_mst_grid2500");
    let graph = Family::Grid.generate(2500, 7);
    let k = 25;

    let (ref_nodes, ref_report) =
        run_reference_loop(&graph, mst_nodes(&graph, k), 1_000_000).expect("reference quiesces");
    let want = format!("{ref_nodes:?}{ref_report:?}");
    let legs = [
        ("legacy-loop", None),
        ("full-scan-1t", Some(engine_cfg(Scheduling::FullScan, 1))),
        ("active-set-1t", Some(engine_cfg(Scheduling::ActiveSet, 1))),
        ("active-set-4t", Some(engine_cfg(Scheduling::ActiveSet, 4))),
        // codec-overhead probe: every message round-trips through the
        // branchless codec via the per-worker scratch. This is the leg
        // the wire-exact-by-default decision rests on: it must stay
        // within a small factor of `active-set-1t` on the same run.
        (
            "active-set-1t-wire-exact",
            Some(engine_cfg(Scheduling::ActiveSet, 1).with_wire_exact(true)),
        ),
    ];
    for (leg, cfg) in legs {
        if let Some(cfg) = cfg {
            let mut sim = Simulator::with_config(&graph, mst_nodes(&graph, k), cfg);
            sim.run(1_000_000).expect("engine quiesces");
            // peak is zeroed as in `bench_bfs_path`: the reference loop
            // does not track memory
            let mut report = sim.report().clone();
            report.peak_memory_bytes = 0;
            let got = format!("{:?}{report:?}", sim.nodes());
            assert_eq!(want, got, "{leg} diverged from the reference loop");
        }
        // byte-identity above needs no real parallelism; the *timing* of
        // multi-thread legs on an undersubscribed machine would poison the
        // committed baseline, so those rows are skipped entirely
        if cfg.is_some_and(|c| c.threads > 1) && !can_bench_threads(4) {
            continue;
        }
        g.bench_function(leg, |b| match cfg {
            None => b.iter(|| {
                run_reference_loop(
                    std::hint::black_box(&graph),
                    mst_nodes(&graph, k),
                    1_000_000,
                )
            }),
            Some(cfg) => b.iter(|| {
                let mut sim =
                    Simulator::with_config(std::hint::black_box(&graph), mst_nodes(&graph, k), cfg);
                sim.run(1_000_000).map(|r| r.rounds)
            }),
        });
        let row = format!("engine/simple_mst_grid2500/{leg}");
        note_rounds(&row, ref_report.rounds);
        note_mode(
            &row,
            if cfg.is_some_and(|c| c.wire_exact) {
                "wire-exact"
            } else {
                "zero-copy"
            },
        );
    }
    g.finish();
}

/// Wall-time-per-simulated-round profile of the SimpleMST grid target:
/// hand-drives the engine (fast-forward, then one timed [`Simulator::step`]
/// per executed round) so the per-round latency distribution and the
/// quiescence fast-forward accounting are visible next to the aggregate
/// medians. Skipped rounds never enter the histogram — they cost O(1)
/// total — so "rounds/second" can be read honestly: executed rounds are
/// timed, skipped rounds are counted.
///
/// Runs in wire-exact mode (the engine default) with codec profiling on,
/// so the encode/decode share of the per-round cost is split out of the
/// aggregate: `codec_ns`/`codec_msgs` land in the JSON row as extras.
fn profile_round_walltime(_c: &mut Criterion) {
    let graph = Family::Grid.generate(2500, 7);
    let k = 25;
    let name = "engine/round_profile/simple_mst_grid2500";
    let mut sim = Simulator::with_config(
        &graph,
        mst_nodes(&graph, k),
        EngineConfig::default()
            .with_scheduling(Scheduling::ActiveSet)
            .with_threads(1)
            .with_codec_profile(true),
    );
    let mut hist = Histogram::new();
    let start = std::time::Instant::now();
    while !sim.quiescent() {
        sim.fast_forward(1_000_000);
        if sim.quiescent() {
            break;
        }
        let t = std::time::Instant::now();
        sim.step().expect("profiled run quiesces");
        hist.record(t.elapsed());
    }
    let wall = start.elapsed().as_secs_f64();
    let (ff_jumps, ff_skipped) = sim.fast_forward_stats();
    let (codec_ns, codec_msgs) = sim.codec_stats();
    let simulated = sim.report().rounds;
    eprintln!("group engine/round_profile");
    eprintln!("  simple_mst_grid2500/active-set-1t: {}", hist.summary());
    eprintln!(
        "    executed {} of {simulated} simulated rounds; fast-forward skipped {ff_skipped} in {ff_jumps} jumps",
        hist.count()
    );
    eprintln!(
        "    codec (wire-exact): {:.2}% of wall — {:.1} ms over {codec_msgs} messages ({:.0} ns/msg)",
        codec_ns as f64 / 1e9 / wall.max(1e-12) * 100.0,
        codec_ns as f64 / 1e6,
        codec_ns as f64 / (codec_msgs.max(1)) as f64
    );
    record_measurement(name, wall);
    note_rounds(name, simulated);
    note_mode(name, "wire-exact");
    note_extra(name, "executed_rounds", hist.count());
    note_extra(name, "ff_skipped_rounds", ff_skipped);
    note_extra(name, "ff_jumps", ff_jumps);
    note_extra(name, "codec_ns", codec_ns);
    note_extra(name, "codec_msgs", codec_msgs);
}

/// The full Fast-MST composition on a ~1600-node grid; the composed
/// runners read `KDOM_THREADS`/`KDOM_SCHED` from the environment, so the
/// legs are driven through env vars (the bench harness is one thread, so
/// the mutation is race-free). `KDOM_WIRE` is left unset, so these legs
/// run wire-exact — the engine default — and are tagged as such.
fn bench_fast_mst(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/fast_mst_grid1600");
    let graph = Family::Grid.generate(1600, 11);

    std::env::remove_var("KDOM_SCHED");
    std::env::remove_var("KDOM_THREADS");
    std::env::remove_var("KDOM_WIRE");
    let want = fast_mst(&graph);
    for (leg, threads, sched) in [
        ("full-scan-1t", "1", "full"),
        ("active-set-1t", "1", "active"),
        ("active-set-4t", "4", "active"),
    ] {
        std::env::set_var("KDOM_THREADS", threads);
        std::env::set_var("KDOM_SCHED", sched);
        let got = fast_mst(&graph);
        assert_eq!(
            format!("{want:?}"),
            format!("{got:?}"),
            "{leg} diverged on Fast-MST"
        );
        // identity holds regardless of CPU count; only the timing of
        // multi-thread legs is skipped on undersubscribed machines
        if threads != "1" && !can_bench_threads(4) {
            continue;
        }
        g.bench_function(leg, |b| b.iter(|| fast_mst(std::hint::black_box(&graph))));
        let row = format!("engine/fast_mst_grid1600/{leg}");
        note_rounds(&row, want.total_rounds());
        note_mode(&row, "wire-exact");
    }
    std::env::remove_var("KDOM_SCHED");
    std::env::remove_var("KDOM_THREADS");
    g.finish();
}

/// Codec microbench: raw bit I/O and full message round-trips through
/// the branchless codec, with and without scratch-buffer reuse. These
/// rows quantify the per-message cost that wire-exact execution adds to
/// every engine send.
fn bench_wire_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");

    // a representative SimpleMST message mix (every FrMsg variant)
    let msgs: Vec<FrMsg> = (0..256u64)
        .map(|i| match i % 7 {
            0 => FrMsg::Probe {
                hops: i as u32,
                root_id: i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & ((1 << 48) - 1),
            },
            1 => FrMsg::EchoDeep(i % 2 == 0),
            2 => FrMsg::Activate,
            3 => FrMsg::FragId(i << 17),
            4 => FrMsg::MwoeUp((i % 3 == 0).then_some(i | 1 << 40)),
            5 => FrMsg::Transfer,
            _ => FrMsg::Connect(!i & ((1 << 48) - 1)),
        })
        .collect();

    // raw writer/reader throughput: push+pull 4096 mixed-width fields
    g.bench_function("bitio_mixed_4096", |b| {
        use kdom_congest::{BitReader, BitWriter};
        b.iter(|| {
            let mut w = BitWriter::new();
            for i in 0..4096u64 {
                w.push(i & ((1 << (1 + i % 48)) - 1), 1 + (i % 48) as u32);
            }
            let frame = w.finish();
            let mut r = BitReader::new(&frame);
            let mut acc = 0u64;
            for i in 0..4096u64 {
                acc ^= r.pull(1 + (i % 48) as u32).expect("pull in bounds");
            }
            acc
        })
    });

    // the engine's per-send hot path: encode+decode through reused
    // scratch buffers, bit count taken from the same encode
    let mut scratch = CodecScratch::new();
    g.bench_function("frmsg_transcode_scratch_256", |b| {
        b.iter(|| {
            let mut bits = 0u64;
            for m in &msgs {
                bits += scratch.transcode(m).map_or(0, |(_, b)| b);
            }
            bits
        })
    });

    // full verification (adds the canonicality re-encode + compare) in
    // the same reused buffers — the fallback-replay and test path
    g.bench_function("frmsg_round_trip_scratch_256", |b| {
        b.iter(|| {
            let mut ok = 0usize;
            for m in &msgs {
                ok += scratch.round_trip(m).is_ok() as usize;
            }
            ok
        })
    });

    // the old allocating path (two fresh Vecs + Debug formatting per
    // message), kept as the comparison row
    g.bench_function("frmsg_round_trip_alloc_256", |b| {
        b.iter(|| {
            let mut ok = 0usize;
            for m in &msgs {
                ok += kdom_congest::wire::round_trip(m).is_ok() as usize;
            }
            ok
        })
    });
    g.finish();
}

/// Service-layer throughput rows: a 64-job sweep through the job
/// scheduler, cache-cold (`miss-grid64`, every job invokes the engine)
/// and fully cached (`hit-grid64`, the identical sweep resubmitted —
/// zero engine invocations, results served by pointer clone). Hand-timed
/// single passes, like the million-node rows: a sweep is a batch, not an
/// iterable microbench. Tagged `mode: "sweep"` so the regression gate
/// only ever compares these rows against other sweep rows, never against
/// engine legs.
fn bench_sweep_throughput(_c: &mut Criterion) {
    use kdom_congest::{JobPool, JobStatus, RunSpec, SweepSpec};
    let graph = std::sync::Arc::new(Family::Grid.generate(256, 21));
    let seeds: Vec<u64> = (0..64).collect();
    let sweep = SweepSpec::new(RunSpec::default().with_k(8)).over_seeds(&seeds);
    let pool = JobPool::new(4, 64 << 20, kdom_mst::service::runner());
    eprintln!("group jobs/sweep_throughput");
    for (leg, want_cached) in [("miss-grid64", false), ("hit-grid64", true)] {
        let start = std::time::Instant::now();
        let handles = pool.submit_sweep(&graph, &sweep);
        for h in &handles {
            h.wait().expect("sweep job runs");
        }
        let wall = start.elapsed().as_secs_f64();
        for h in &handles {
            assert_eq!(
                h.status(),
                JobStatus::Done {
                    from_cache: want_cached
                },
                "{leg}: unexpected cache behaviour"
            );
        }
        let jobs = handles.len() as u64;
        let jobs_per_sec = jobs as f64 / wall.max(1e-12);
        eprintln!("  {leg}: {wall:.3}s for {jobs} jobs ({jobs_per_sec:.0} jobs/s)");
        let name = format!("jobs/sweep_throughput/{leg}");
        record_measurement(&name, wall);
        note_mode(&name, "sweep");
        note_extra(&name, "jobs", jobs);
        note_extra(&name, "jobs_per_sec", jobs_per_sec as u64);
    }
    let stats = pool.stats();
    assert_eq!(stats.engine_runs, 64, "the cached pass must run nothing");
    assert_eq!(stats.cache.hits, 64, "all 64 resubmissions must hit");
}

/// Million-node rows: the full Fast-MST composition (`k = ⌈√n⌉ = 1000`)
/// on a streamed `G(n, m)` graph with 10^6 nodes and 2×10^6 edges, once
/// zero-copy (`KDOM_WIRE=off`) and once wire-exact (the default). Each
/// is timed as a single iteration — the run is far past the harness
/// batch budget — and the reported engine peak memory lands in the JSON
/// as an extra, where the trace validator and the CI budget assert can
/// see it. Skipped in smoke runs (`KDOM_BENCH_MS=0`): CI covers this
/// scale with the dedicated `large-graph` job at 10^5 nodes instead.
fn bench_fast_mst_rand1m(_c: &mut Criterion) {
    let smoke = kdom_graph::knob::knob("KDOM_BENCH_MS", 300u64) == 0;
    if smoke {
        eprintln!("kdom-bench: skipping fast_mst_rand1M in smoke mode (KDOM_BENCH_MS=0)");
    } else {
        let graph = kdom_graph::generators::gnm_connected(
            &kdom_graph::generators::GenConfig::with_seed(1_000_000, 42),
            2_000_000,
        );
        eprintln!("group engine/fast_mst_rand1M");
        for (leg, wire, mode) in [
            ("active-set-1t", Some("off"), "zero-copy"),
            ("active-set-1t-wire-exact", None, "wire-exact"),
        ] {
            match wire {
                Some(v) => std::env::set_var("KDOM_WIRE", v),
                None => std::env::remove_var("KDOM_WIRE"),
            }
            let name = format!("engine/fast_mst_rand1M/{leg}");
            let start = std::time::Instant::now();
            let run = fast_mst(std::hint::black_box(&graph));
            let wall = start.elapsed().as_secs_f64();
            eprintln!(
                "  {leg}: {:.2}s, peak {} MiB",
                wall,
                run.pipeline_report.peak_memory_bytes >> 20
            );
            assert_eq!(run.mst_edges.len(), graph.node_count() - 1);
            assert!(
                run.pipeline_report.peak_memory_bytes > 0,
                "pipeline must report peak memory"
            );
            record_measurement(&name, wall);
            note_rounds(&name, run.total_rounds());
            note_mode(&name, mode);
            note_extra(
                &name,
                "peak_mem_bytes",
                run.pipeline_report.peak_memory_bytes,
            );
            note_extra(&name, "graph_mem_bytes", graph.memory_bytes());
        }
        std::env::remove_var("KDOM_WIRE");
    }
    // gate against the committed baseline before replacing it
    check_regression_gate();
    write_engine_json().expect("BENCH_engine.json written");
}

criterion_group!(
    benches,
    bench_bfs_path,
    bench_simple_mst,
    profile_round_walltime,
    bench_fast_mst,
    bench_wire_codec,
    bench_sweep_throughput,
    bench_fast_mst_rand1m
);
criterion_main!(benches);
