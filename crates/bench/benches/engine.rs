//! Engine scaling bench: the shared round engine against the pre-refactor
//! reference loop, across schedulers and thread counts.
//!
//! Produces `BENCH_engine.json` at the repo root (median wall-clock and
//! rounds/second per target). Every engine leg is asserted byte-identical
//! to the reference loop before being timed, so the speedups are over
//! equivalent work. `KDOM_THREADS=4` legs only show wall-clock gains on
//! multi-core hosts; on a single core they measure the determinism
//! overhead instead.

use kdom_bench::harness::{
    can_bench_threads, check_regression_gate, note_extra, note_rounds, record_measurement,
    write_engine_json, Criterion, Histogram,
};
use kdom_bench::{criterion_group, criterion_main};
use kdom_congest::engine::run_reference_loop;
use kdom_congest::{EngineConfig, Scheduling, Simulator};
use kdom_core::dist::bfs::BfsNode;
use kdom_core::dist::fragments::FragmentNode;
use kdom_graph::generators::Family;
use kdom_graph::Graph;
use kdom_mst::fastmst::fast_mst;

fn mst_nodes(g: &Graph, k: usize) -> Vec<FragmentNode> {
    g.nodes()
        .map(|v| FragmentNode::new(k, g.id_of(v)))
        .collect()
}

fn engine_cfg(sched: Scheduling, threads: usize) -> EngineConfig {
    EngineConfig::default()
        .with_scheduling(sched)
        .with_threads(threads)
}

/// BFS on a 2000-node path: diameter-bound rounds where only the frontier
/// does work — the showcase for active-set scheduling (the full scan
/// burns `n` automaton steps per round on idle nodes).
fn bench_bfs_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/bfs_path2000");
    let graph = Family::Path.generate(2000, 0);
    let make =
        |g: &Graph| -> Vec<BfsNode> { (0..g.node_count()).map(|v| BfsNode::new(v == 0)).collect() };

    let (ref_nodes, ref_report) =
        run_reference_loop(&graph, make(&graph), 1_000_000).expect("reference quiesces");
    let want = format!("{ref_nodes:?}{ref_report:?}");
    let legs = [
        ("legacy-loop", None),
        ("full-scan-1t", Some(engine_cfg(Scheduling::FullScan, 1))),
        ("active-set-1t", Some(engine_cfg(Scheduling::ActiveSet, 1))),
    ];
    for (leg, cfg) in legs {
        if let Some(cfg) = cfg {
            let mut sim = Simulator::with_config(&graph, make(&graph), cfg);
            sim.run(1_000_000).expect("engine quiesces");
            // the reference loop predates memory tracking: zero the peak
            // before the comparison, everything else must match exactly
            let mut report = sim.report().clone();
            report.peak_memory_bytes = 0;
            let got = format!("{:?}{report:?}", sim.nodes());
            assert_eq!(want, got, "{leg} diverged from the reference loop");
        }
        g.bench_function(leg, |b| match cfg {
            None => {
                b.iter(|| run_reference_loop(std::hint::black_box(&graph), make(&graph), 1_000_000))
            }
            Some(cfg) => b.iter(|| {
                let mut sim =
                    Simulator::with_config(std::hint::black_box(&graph), make(&graph), cfg);
                sim.run(1_000_000).map(|r| r.rounds)
            }),
        });
        note_rounds(&format!("engine/bfs_path2000/{leg}"), ref_report.rounds);
    }
    g.finish();
}

/// SimpleMST on a ~2500-node grid: the round-schedule-heavy protocol the
/// active set helps most (late rounds have few live fragments).
fn bench_simple_mst(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/simple_mst_grid2500");
    let graph = Family::Grid.generate(2500, 7);
    let k = 25;

    let (ref_nodes, ref_report) =
        run_reference_loop(&graph, mst_nodes(&graph, k), 1_000_000).expect("reference quiesces");
    let want = format!("{ref_nodes:?}{ref_report:?}");
    let legs = [
        ("legacy-loop", None),
        ("full-scan-1t", Some(engine_cfg(Scheduling::FullScan, 1))),
        ("active-set-1t", Some(engine_cfg(Scheduling::ActiveSet, 1))),
        ("active-set-4t", Some(engine_cfg(Scheduling::ActiveSet, 4))),
        // codec-overhead probe: every message encoded at send and decoded
        // at delivery. Measured, not gated — the committed baseline has no
        // entry for this leg, so the regression gate skips it by design.
        (
            "active-set-1t-wire-exact",
            Some(engine_cfg(Scheduling::ActiveSet, 1).with_wire_exact(true)),
        ),
    ];
    for (leg, cfg) in legs {
        if let Some(cfg) = cfg {
            let mut sim = Simulator::with_config(&graph, mst_nodes(&graph, k), cfg);
            sim.run(1_000_000).expect("engine quiesces");
            // peak is zeroed as in `bench_bfs_path`: the reference loop
            // does not track memory
            let mut report = sim.report().clone();
            report.peak_memory_bytes = 0;
            let got = format!("{:?}{report:?}", sim.nodes());
            assert_eq!(want, got, "{leg} diverged from the reference loop");
        }
        // byte-identity above needs no real parallelism; the *timing* of
        // multi-thread legs on an undersubscribed machine would poison the
        // committed baseline, so those rows are skipped entirely
        if cfg.is_some_and(|c| c.threads > 1) && !can_bench_threads(4) {
            continue;
        }
        g.bench_function(leg, |b| match cfg {
            None => b.iter(|| {
                run_reference_loop(
                    std::hint::black_box(&graph),
                    mst_nodes(&graph, k),
                    1_000_000,
                )
            }),
            Some(cfg) => b.iter(|| {
                let mut sim =
                    Simulator::with_config(std::hint::black_box(&graph), mst_nodes(&graph, k), cfg);
                sim.run(1_000_000).map(|r| r.rounds)
            }),
        });
        note_rounds(
            &format!("engine/simple_mst_grid2500/{leg}"),
            ref_report.rounds,
        );
    }
    g.finish();
}

/// Wall-time-per-simulated-round profile of the SimpleMST grid target:
/// hand-drives the engine (fast-forward, then one timed [`Simulator::step`]
/// per executed round) so the per-round latency distribution and the
/// quiescence fast-forward accounting are visible next to the aggregate
/// medians. Skipped rounds never enter the histogram — they cost O(1)
/// total — so "rounds/second" can be read honestly: executed rounds are
/// timed, skipped rounds are counted.
fn profile_round_walltime(_c: &mut Criterion) {
    let graph = Family::Grid.generate(2500, 7);
    let k = 25;
    let name = "engine/round_profile/simple_mst_grid2500";
    let mut sim = Simulator::with_config(
        &graph,
        mst_nodes(&graph, k),
        engine_cfg(Scheduling::ActiveSet, 1),
    );
    let mut hist = Histogram::new();
    let start = std::time::Instant::now();
    while !sim.quiescent() {
        sim.fast_forward(1_000_000);
        if sim.quiescent() {
            break;
        }
        let t = std::time::Instant::now();
        sim.step().expect("profiled run quiesces");
        hist.record(t.elapsed());
    }
    let wall = start.elapsed().as_secs_f64();
    let (ff_jumps, ff_skipped) = sim.fast_forward_stats();
    let simulated = sim.report().rounds;
    eprintln!("group engine/round_profile");
    eprintln!("  simple_mst_grid2500/active-set-1t: {}", hist.summary());
    eprintln!(
        "    executed {} of {simulated} simulated rounds; fast-forward skipped {ff_skipped} in {ff_jumps} jumps",
        hist.count()
    );
    record_measurement(name, wall);
    note_rounds(name, simulated);
    note_extra(name, "executed_rounds", hist.count());
    note_extra(name, "ff_skipped_rounds", ff_skipped);
    note_extra(name, "ff_jumps", ff_jumps);
}

/// The full Fast-MST composition on a ~1600-node grid; the composed
/// runners read `KDOM_THREADS`/`KDOM_SCHED` from the environment, so the
/// legs are driven through env vars (the bench harness is one thread, so
/// the mutation is race-free).
fn bench_fast_mst(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/fast_mst_grid1600");
    let graph = Family::Grid.generate(1600, 11);

    std::env::remove_var("KDOM_SCHED");
    std::env::remove_var("KDOM_THREADS");
    let want = fast_mst(&graph);
    for (leg, threads, sched) in [
        ("full-scan-1t", "1", "full"),
        ("active-set-1t", "1", "active"),
        ("active-set-4t", "4", "active"),
    ] {
        std::env::set_var("KDOM_THREADS", threads);
        std::env::set_var("KDOM_SCHED", sched);
        let got = fast_mst(&graph);
        assert_eq!(
            format!("{want:?}"),
            format!("{got:?}"),
            "{leg} diverged on Fast-MST"
        );
        // identity holds regardless of CPU count; only the timing of
        // multi-thread legs is skipped on undersubscribed machines
        if threads != "1" && !can_bench_threads(4) {
            continue;
        }
        g.bench_function(leg, |b| b.iter(|| fast_mst(std::hint::black_box(&graph))));
        note_rounds(
            &format!("engine/fast_mst_grid1600/{leg}"),
            want.total_rounds(),
        );
    }
    std::env::remove_var("KDOM_SCHED");
    std::env::remove_var("KDOM_THREADS");
    g.finish();
}

/// Million-node row: the full Fast-MST composition (`k = ⌈√n⌉ = 1000`)
/// on a streamed `G(n, m)` graph with 10^6 nodes and 2×10^6 edges.
/// Timed as a single iteration — the run is far past the harness batch
/// budget — and the reported engine peak memory lands in the JSON as an
/// extra, where the trace validator and the CI budget assert can see it.
/// Skipped in smoke runs (`KDOM_BENCH_MS=0`): CI covers this scale with
/// the dedicated `large-graph` job at 10^5 nodes instead.
fn bench_fast_mst_rand1m(_c: &mut Criterion) {
    let smoke = std::env::var("KDOM_BENCH_MS").is_ok_and(|v| v == "0");
    if smoke {
        eprintln!("kdom-bench: skipping fast_mst_rand1M in smoke mode (KDOM_BENCH_MS=0)");
    } else {
        let name = "engine/fast_mst_rand1M/active-set-1t";
        let graph = kdom_graph::generators::gnm_connected(
            &kdom_graph::generators::GenConfig::with_seed(1_000_000, 42),
            2_000_000,
        );
        let start = std::time::Instant::now();
        let run = fast_mst(std::hint::black_box(&graph));
        let wall = start.elapsed().as_secs_f64();
        eprintln!("group engine/fast_mst_rand1M");
        eprintln!(
            "  active-set-1t: {:.2}s, peak {} MiB",
            wall,
            run.pipeline_report.peak_memory_bytes >> 20
        );
        assert_eq!(run.mst_edges.len(), graph.node_count() - 1);
        assert!(
            run.pipeline_report.peak_memory_bytes > 0,
            "pipeline must report peak memory"
        );
        record_measurement(name, wall);
        note_rounds(name, run.total_rounds());
        note_extra(
            name,
            "peak_mem_bytes",
            run.pipeline_report.peak_memory_bytes,
        );
        note_extra(name, "graph_mem_bytes", graph.memory_bytes());
    }
    // gate against the committed baseline before replacing it
    check_regression_gate();
    write_engine_json().expect("BENCH_engine.json written");
}

criterion_group!(
    benches,
    bench_bfs_path,
    bench_simple_mst,
    profile_round_walltime,
    bench_fast_mst,
    bench_fast_mst_rand1m
);
criterion_main!(benches);
