//! Wall-clock bench behind E10/E15/E16: Fast-MST vs the baselines.

use kdom_bench::harness::Criterion;
use kdom_bench::{criterion_group, criterion_main};
use kdom_graph::generators::Family;
use kdom_mst::baselines::{phase_doubling_mst, pipeline_only_mst};
use kdom_mst::fastmst::fast_mst;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("mst_race");
    g.sample_size(10);
    let graph = Family::Grid.generate(400, 59);
    g.bench_function("fast_mst/grid400", |b| {
        b.iter(|| fast_mst(std::hint::black_box(&graph)))
    });
    g.bench_function("phase_doubling/grid400", |b| {
        b.iter(|| phase_doubling_mst(std::hint::black_box(&graph)))
    });
    g.bench_function("pipeline_only/grid400", |b| {
        b.iter(|| pipeline_only_mst(std::hint::black_box(&graph)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
