//! Wall-clock bench behind E2: simulation wall-clock of distributed
//! DiamDOM across graph families and k.

use kdom_bench::harness::Criterion;
use kdom_bench::{criterion_group, criterion_main};
use kdom_core::dist::diamdom::run_diamdom;
use kdom_graph::generators::Family;
use kdom_graph::NodeId;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("diamdom");
    for fam in [Family::RandomTree, Family::Grid, Family::Gnp] {
        for k in [2usize, 8] {
            let graph = fam.generate(256, 23);
            g.bench_function(format!("{fam}/n256/k{k}"), |b| {
                b.iter(|| run_diamdom(std::hint::black_box(&graph), NodeId(0), k))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
