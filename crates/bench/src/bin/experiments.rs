//! Regenerates every experiment table of the reproduction.
//!
//! Usage:
//!   experiments [all|e1|e2|...|e15]... [--quick]
//!
//! With no arguments, runs the full suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let tables = if names.is_empty() || names.iter().any(|n| n.as_str() == "all") {
        kdom_bench::exps::all(quick)
    } else {
        let mut ts = Vec::new();
        for n in names {
            match kdom_bench::exps::by_name(n, quick) {
                Some(t) => ts.push(t),
                None => {
                    eprintln!("unknown experiment {n:?}; use e1..e23 or all");
                    return ExitCode::FAILURE;
                }
            }
        }
        ts
    };

    let mut ok = true;
    for t in &tables {
        print!("{t}");
        ok &= t.all_ok;
    }
    println!(
        "\n{} experiment(s); {}",
        tables.len(),
        if ok {
            "all checks passed"
        } else {
            "SOME CHECKS FAILED"
        }
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
