//! The experiment suite: one function per paper claim (see DESIGN.md §3).
//!
//! Every experiment returns a [`Table`] whose rows are measured values
//! next to the paper's bound, and whose verdict records whether every
//! checked property held. `EXPERIMENTS.md` is the curated record of one
//! full run.

use kdom_congest::Port;
use kdom_core::cluster::Charge;
use kdom_core::dist::coloring::{cv_schedule, BalancedConfig, BalancedNode};
use kdom_core::dist::diamdom::run_diamdom;
use kdom_core::dist::fragments::{run_simple_mst, schedule_end};
use kdom_core::fastdom::{fast_dom_g_full, fast_dom_t, WithinCluster};
use kdom_core::logstar::log_star;
use kdom_core::partition::{dom_partition, dom_partition_1, dom_partition_2};
use kdom_core::treedp::min_k_dominating_tree;
use kdom_core::verify::{
    check_dominating_size, check_fastdom_output, check_k_dominating, check_mst_fragments,
    check_spanning_forest, dominating_size_bound,
};
use kdom_graph::generators::Family;
use kdom_graph::mst_ref::is_mst;
use kdom_graph::properties::diameter;
use kdom_graph::{Graph, NodeId, RootedTree};
use kdom_mst::baselines::{collect_all_mst, phase_doubling_mst, pipeline_only_mst};
use kdom_mst::fastmst::{fast_mst, fast_mst_with_k};
use kdom_mst::pipeline::run_pipeline;

use crate::table::Table;

fn scope(g: &Graph) -> (Vec<NodeId>, Vec<(NodeId, NodeId)>) {
    (
        g.nodes().collect(),
        g.edges().iter().map(|e| (e.u, e.v)).collect(),
    )
}

fn sizes(quick: bool, full: &[usize]) -> Vec<usize> {
    if quick {
        full.iter().map(|&n| (n / 4).max(16)).collect()
    } else {
        full.to_vec()
    }
}

/// E1 — Lemma 2.1: a k-dominating set of size ≤ max(1, ⌊n/(k+1)⌋) exists
/// (constructed by the exact tree DP on a BFS tree).
pub fn e1(quick: bool) -> Table {
    let mut t = Table::new(
        "E1 — Lemma 2.1: existence of a small k-dominating set",
        &["family", "n", "k", "bound", "|D|", "dominates", "size ok"],
    );
    for fam in Family::ALL {
        for &n in &sizes(quick, &[64, 256, 1024]) {
            for k in [1usize, 3, 8] {
                let g = fam.generate(n, 17);
                let n = g.node_count();
                let tree = RootedTree::from_parent_array(
                    NodeId(0),
                    kdom_graph::properties::bfs_parents(&g, NodeId(0))
                        .iter()
                        .enumerate()
                        .map(|(i, p)| if i == 0 { None } else { *p })
                        .collect(),
                );
                let d = min_k_dominating_tree(&tree, k);
                let dominates = check_k_dominating(&g, &d, k).is_ok();
                let size_ok = check_dominating_size(n, k, d.len()).is_ok();
                let bound = dominating_size_bound(n, k);
                let dom = t.check(dominates).to_string();
                let sok = t.check(size_ok).to_string();
                t.row(vec![
                    fam.to_string(),
                    n.to_string(),
                    k.to_string(),
                    bound.to_string(),
                    d.len().to_string(),
                    dom,
                    sok,
                ]);
            }
        }
    }
    t.note("construction: exact bottom-up DP (see DESIGN.md on the EA's level-set gap)");
    t
}

/// E2 — Lemma 2.3: distributed `DiamDOM` finishes within ~5·Diam + k
/// rounds and outputs a dominating set within the (root-completed) bound.
pub fn e2(quick: bool) -> Table {
    let mut t = Table::new(
        "E2 — Lemma 2.3: DiamDOM rounds vs 5·Diam + k",
        &[
            "family",
            "n",
            "k",
            "Diam",
            "rounds",
            "bound",
            "≤bound",
            "|D|",
            "≤⌊n/(k+1)⌋+1",
        ],
    );
    for fam in Family::ALL {
        for &n in &sizes(quick, &[128, 512]) {
            for k in [2usize, 6] {
                let g = fam.generate(n, 23);
                let n = g.node_count();
                let run = run_diamdom(&g, NodeId(0), k);
                let diam = u64::from(diameter(&g));
                let bound = 5 * diam + 2 * k as u64 + 12;
                let ok_time = t.check(run.total_rounds() <= bound).to_string();
                let ok_size = t
                    .check(run.dominators.len() <= dominating_size_bound(n, k) + 1)
                    .to_string();
                t.check(check_k_dominating(&g, &run.dominators, k).is_ok());
                t.row(vec![
                    fam.to_string(),
                    n.to_string(),
                    k.to_string(),
                    diam.to_string(),
                    run.total_rounds().to_string(),
                    bound.to_string(),
                    ok_time,
                    run.dominators.len().to_string(),
                    ok_size,
                ]);
            }
        }
    }
    t.note("bound includes the +k claim phase and scheduling constants (see DiamDOM docs)");
    t.note("|D| bound is ⌊n/(k+1)⌋+1: the root-completion safeguard costs at most one");
    t
}

/// E3 — Lemma 3.3: distributed `BalancedDOM` runs in O(log* n) rounds
/// (flat in n) and outputs a balanced dominating set.
pub fn e3(quick: bool) -> Table {
    let mut t = Table::new(
        "E3 — Lemma 3.3: BalancedDOM rounds are O(log* n)",
        &[
            "n",
            "log*~n",
            "cv iters",
            "rounds",
            "|D|",
            "≤⌊n/2⌋",
            "min cluster",
            "≥2",
        ],
    );
    for &n in &sizes(quick, &[64, 512, 4096, 16384]) {
        let g = Family::RandomTree.generate(n, 29);
        let tree = RootedTree::from_graph(&g, NodeId(0));
        let port_to = |v: NodeId, to: NodeId| {
            Port(
                g.neighbors(v)
                    .iter()
                    .position(|a| a.to == to)
                    .expect("tree edge"),
            )
        };
        let nodes: Vec<BalancedNode> = (0..n)
            .map(|v| {
                let v = NodeId(v);
                BalancedNode::new(BalancedConfig {
                    parent: tree.parent(v).map(|p| port_to(v, p)),
                    children: tree.children(v).iter().map(|&c| port_to(v, c)).collect(),
                    id_bits: 48,
                })
            })
            .collect();
        let (nodes, report) =
            kdom_congest::run_protocol(&g, nodes, 10_000).expect("BalancedDOM quiesces");
        let mut size = std::collections::HashMap::new();
        for (v, node) in nodes.iter().enumerate() {
            let center = match node.center_port {
                None => NodeId(v),
                Some(p) => g.neighbors(NodeId(v))[p.0].to,
            };
            *size.entry(center).or_insert(0usize) += 1;
        }
        let centers = size.len();
        let min_cluster = size.values().copied().min().unwrap_or(0);
        let ok_d = t.check(centers <= n / 2).to_string();
        let ok_c = t.check(min_cluster >= 2).to_string();
        t.row(vec![
            n.to_string(),
            log_star(n as u64).to_string(),
            cv_schedule(48).to_string(),
            report.rounds.to_string(),
            centers.to_string(),
            ok_d,
            min_cluster.to_string(),
            ok_c,
        ]);
    }
    t.note("rounds are identical across n: the 48-bit-id CV schedule is the log* term");
    t
}

/// E4 — Lemma 3.4: `DOMPartition_1` produces (k+1, 4k²) clusters.
pub fn e4(quick: bool) -> Table {
    let mut t = Table::new(
        "E4 — Lemma 3.4: DOMPartition_1 bounds",
        &[
            "n",
            "k",
            "clusters",
            "min size",
            "≥k+1",
            "max rad",
            "≤4k²",
            "charged rounds",
        ],
    );
    let n = if quick { 256 } else { 2048 };
    for k in [2usize, 4, 8, 16] {
        let g = Family::RandomTree.generate(n, 31);
        let (nodes, edges) = scope(&g);
        let res = dom_partition_1(&g, nodes, &edges, k);
        let cl = kdom_core::fastdom::clusters_to_clustering(n, &res.clusters);
        let max_rad = cl.max_radius(&g);
        let ok_s = t.check(res.min_size() > k).to_string();
        let ok_r = t.check(max_rad <= 4 * (k as u32) * (k as u32)).to_string();
        t.row(vec![
            n.to_string(),
            k.to_string(),
            res.cluster_count().to_string(),
            res.min_size().to_string(),
            ok_s,
            max_rad.to_string(),
            ok_r,
            res.charge.rounds.to_string(),
        ]);
    }
    t
}

/// E5 — Lemmas 3.6–3.8: `DOMPartition_2` vs `DOMPartition`: same (k+1,
/// 5k+2) quality, with the Fig. 7 capping cutting the log k time factor.
pub fn e5(quick: bool) -> Table {
    let mut t = Table::new(
        "E5 — Lemmas 3.6-3.8: DOMPartition_2 vs DOMPartition (Fig. 7 capping)",
        &[
            "family/n",
            "k",
            "rad_2",
            "rad_full",
            "≤5k+2",
            "rounds_2",
            "rounds_full",
            "ratio",
        ],
    );
    let n = if quick { 512 } else { 4096 };
    for fam in [Family::Path, Family::Caterpillar, Family::RandomTree] {
        for k in [7usize, 31, 63] {
            let g = fam.generate(n, 37);
            let n = g.node_count();
            let (nodes, edges) = scope(&g);
            let r2 = dom_partition_2(&g, nodes.clone(), &edges, k);
            let rf = dom_partition(&g, nodes, &edges, k);
            let cl2 = kdom_core::fastdom::clusters_to_clustering(n, &r2.clusters);
            let clf = kdom_core::fastdom::clusters_to_clustering(n, &rf.clusters);
            let (rad2, radf) = (cl2.max_radius(&g), clf.max_radius(&g));
            let bound = 5 * k as u32 + 2;
            let ok = t.check(rad2 <= bound && radf <= bound).to_string();
            t.check(r2.min_size() > k && rf.min_size() > k);
            let ratio = r2.charge.rounds as f64 / rf.charge.rounds.max(1) as f64;
            t.row(vec![
                format!("{fam}/{n}"),
                k.to_string(),
                rad2.to_string(),
                radf.to_string(),
                ok,
                r2.charge.rounds.to_string(),
                rf.charge.rounds.to_string(),
                format!("{ratio:.2}x"),
            ]);
        }
    }
    t.note("the log k gap is a worst-case guarantee: on benign trees cluster radii grow like 2^i and the two variants cost the same; the Fig. 7 capping protects against early radius blow-ups");
    t
}

/// E6 — Theorem 3.2: `FastDOM_T` meets the n/(k+1) bound on trees in
/// charged O(k log* n) rounds.
pub fn e6(quick: bool) -> Table {
    let mut t = Table::new(
        "E6 — Theorem 3.2: FastDOM_T on trees",
        &[
            "family",
            "n",
            "k",
            "|D|",
            "bound",
            "ok",
            "Rad(P)",
            "≤k",
            "charged rounds",
        ],
    );
    for fam in Family::TREES {
        for &n in &sizes(quick, &[256, 1024]) {
            for k in [2usize, 5, 11] {
                let g = fam.generate(n, 41);
                let res = fast_dom_t(&g, k, WithinCluster::OptimalDp);
                let n = g.node_count();
                let ok_all = check_fastdom_output(&g, &res.clustering, k).is_ok();
                let ok = t.check(ok_all).to_string();
                let rad = res.clustering.max_radius(&g);
                let okr = t.check(rad <= k as u32).to_string();
                t.row(vec![
                    fam.to_string(),
                    n.to_string(),
                    k.to_string(),
                    res.dominators().len().to_string(),
                    dominating_size_bound(n, k).to_string(),
                    ok,
                    rad.to_string(),
                    okr,
                    res.charge.rounds.to_string(),
                ]);
            }
        }
    }
    t
}

/// E7 — Lemmas 4.1–4.3: distributed `SimpleMST` builds a (k+1, n)
/// spanning forest of MST fragments in measured O(k) rounds.
pub fn e7(quick: bool) -> Table {
    let mut t = Table::new(
        "E7 — Lemmas 4.1-4.3: SimpleMST fragments",
        &[
            "n",
            "k",
            "rounds",
            "schedule",
            "fragments",
            "min size",
            "≥k+1",
            "⊆MST",
        ],
    );
    let n = if quick { 256 } else { 1024 };
    let g = Family::Grid.generate(n, 43);
    let n = g.node_count();
    for k in [1usize, 3, 7, 15, 31] {
        let run = run_simple_mst(&g, k);
        let mut fsize = vec![0usize; run.roots.len()];
        for &f in &run.fragment_of {
            fsize[f] += 1;
        }
        let min_size = fsize.iter().copied().min().unwrap_or(0);
        let ok_s = t.check(min_size >= (k + 1).min(n)).to_string();
        let ok_m = t
            .check(
                check_mst_fragments(&g, &run.tree_edges).is_ok()
                    && check_spanning_forest(&g, &run.tree_edges, (k + 1).min(n)).is_ok(),
            )
            .to_string();
        t.row(vec![
            n.to_string(),
            k.to_string(),
            run.report.rounds.to_string(),
            schedule_end(k).to_string(),
            run.roots.len().to_string(),
            min_size.to_string(),
            ok_s,
            ok_m,
        ]);
    }
    t.note("rounds track the fixed schedule Σ(5·2^i+8) = O(k), independent of n");
    t
}

/// E8 — Theorem 4.4: `FastDOM_G` on general graphs.
pub fn e8(quick: bool) -> Table {
    let mut t = Table::new(
        "E8 — Theorem 4.4: FastDOM_G on general graphs",
        &[
            "family",
            "n",
            "k",
            "|D|",
            "bound",
            "ok",
            "measured+charged rounds",
        ],
    );
    for fam in [Family::Grid, Family::Gnp, Family::RandomTree] {
        for &n in &sizes(quick, &[256, 1024]) {
            for k in [3usize, 8] {
                let g = fam.generate(n, 47);
                let n = g.node_count();
                let (res, _) = fast_dom_g_full(&g, k, WithinCluster::OptimalDp);
                let ok = t
                    .check(check_fastdom_output(&g, &res.clustering, k).is_ok())
                    .to_string();
                t.row(vec![
                    fam.to_string(),
                    n.to_string(),
                    k.to_string(),
                    res.dominators().len().to_string(),
                    dominating_size_bound(n, k).to_string(),
                    ok,
                    res.charge.rounds.to_string(),
                ]);
            }
        }
    }
    t
}

/// E9 — Lemmas 5.3/5.5: the `Pipeline` convergecast is fully pipelined
/// (zero stalls, zero order violations) and finishes in O(N + Diam).
pub fn e9(quick: bool) -> Table {
    let mut t = Table::new(
        "E9 — Lemmas 5.3/5.5: Pipeline is fully pipelined",
        &[
            "family",
            "n",
            "N",
            "Diam",
            "collect rounds",
            "N+2·Diam+16",
            "≤",
            "stalls",
            "violations",
        ],
    );
    for fam in Family::ALL {
        let n = if quick { 100 } else { 400 };
        let g = fam.generate(n, 53);
        let clusters: Vec<u64> = g.nodes().map(|v| g.id_of(v)).collect();
        let run = run_pipeline(&g, NodeId(0), &clusters, true, false);
        let diam = u64::from(diameter(&g));
        let nn = g.node_count() as u64;
        let bound = nn + 2 * diam + 16;
        let ok = t.check(run.collect_rounds <= bound).to_string();
        t.check(run.stalls == 0 && run.order_violations == 0);
        t.row(vec![
            fam.to_string(),
            g.node_count().to_string(),
            nn.to_string(),
            diam.to_string(),
            run.collect_rounds.to_string(),
            bound.to_string(),
            ok,
            run.stalls.to_string(),
            run.order_violations.to_string(),
        ]);
    }
    t.note("singleton clusters: N = n is the worst case for the N term");
    t
}

/// E10 — Theorem 5.6: `Fast-MST` vs the baselines across topologies: the
/// √n·log* n + Diam shape and the crossover with the O(n) baseline.
pub fn e10(quick: bool) -> Table {
    let mut t = Table::new(
        "E10 — Theorem 5.6: Fast-MST vs baselines (total measured rounds)",
        &[
            "family",
            "n",
            "Diam",
            "fast",
            "(frag/part/bfs/pipe)",
            "phase-dbl",
            "pipe-only",
            "collect",
            "mst ok",
            "winner",
        ],
    );
    for fam in Family::ALL {
        for &n in &sizes(quick, &[256, 1024]) {
            let g = fam.generate(n, 59);
            if g.node_count() < 2 {
                continue;
            }
            let fast = fast_mst(&g);
            let pd = phase_doubling_mst(&g);
            let po = pipeline_only_mst(&g);
            let ca = collect_all_mst(&g);
            let ok = t
                .check(
                    is_mst(&g, &fast.mst_edges)
                        && is_mst(&g, &pd.mst_edges)
                        && is_mst(&g, &po.mst_edges)
                        && is_mst(&g, &ca.mst_edges)
                        && fast.stalls == 0,
                )
                .to_string();
            let rounds = [
                ("fast", fast.total_rounds()),
                ("phase-dbl", pd.rounds),
                ("pipe-only", po.rounds),
                ("collect", ca.rounds),
            ];
            let winner = rounds.iter().min_by_key(|(_, r)| *r).expect("non-empty").0;
            t.row(vec![
                fam.to_string(),
                g.node_count().to_string(),
                diameter(&g).to_string(),
                fast.total_rounds().to_string(),
                format!(
                    "{}/{}/{}/{}",
                    fast.fragment_rounds,
                    fast.partition_charge.rounds,
                    fast.bfs_rounds,
                    fast.pipeline_rounds
                ),
                pd.rounds.to_string(),
                po.rounds.to_string(),
                ca.rounds.to_string(),
                ok,
                winner.to_string(),
            ]);
        }
    }
    t.note("expected shape: fast wins on low-diameter families at large n; on paths Diam ≈ n and every algorithm is Ω(n)");
    t
}

/// E11 — ablation: pipelining vs the naive wait-for-children barrier.
pub fn e11(quick: bool) -> Table {
    let mut t = Table::new(
        "E11 — ablation: pipelined vs barrier convergecast",
        &["family", "n", "pipelined", "barrier", "slowdown"],
    );
    for fam in [
        Family::BalancedBinary,
        Family::RandomTree,
        Family::Grid,
        Family::Path,
    ] {
        // the barrier variant is Θ(n²) on a path; keep that row tractable
        let n = match (quick, fam) {
            (true, _) => 96,
            (false, Family::Path) => 256,
            (false, _) => 512,
        };
        let g = fam.generate(n, 61);
        let clusters: Vec<u64> = g.nodes().map(|v| g.id_of(v)).collect();
        let fastr = run_pipeline(&g, NodeId(0), &clusters, true, false);
        let slow = run_pipeline(&g, NodeId(0), &clusters, true, true);
        t.check(slow.collect_rounds >= fastr.collect_rounds);
        t.row(vec![
            fam.to_string(),
            g.node_count().to_string(),
            fastr.collect_rounds.to_string(),
            slow.collect_rounds.to_string(),
            format!(
                "{:.2}x",
                slow.collect_rounds as f64 / fastr.collect_rounds.max(1) as f64
            ),
        ]);
    }
    t.note("the barrier variant is the complication FastMST's analysis avoids (§5.1)");
    t
}

/// E12 — CONGEST accounting: message counts and maximum message size for
/// every distributed algorithm.
pub fn e12(quick: bool) -> Table {
    let mut t = Table::new(
        "E12 — CONGEST accounting: messages and bits",
        &[
            "algorithm",
            "n",
            "rounds",
            "messages",
            "max msg bits",
            "O(log n) ok",
        ],
    );
    let n = if quick { 128 } else { 512 };
    let g = Family::Gnp.generate(n, 67);
    let n = g.node_count();

    let dd = run_diamdom(&g, NodeId(0), 4);
    let add = |name: &str, rounds: u64, msgs: u64, bits: u64, t: &mut Table| {
        let ok = t.check(bits <= 160).to_string();
        t.row(vec![
            name.to_string(),
            n.to_string(),
            rounds.to_string(),
            msgs.to_string(),
            bits.to_string(),
            ok,
        ]);
    };
    add(
        "DiamDOM (incl. BFS)",
        dd.total_rounds(),
        dd.bfs_report.messages + dd.dd_report.messages,
        dd.bfs_report
            .max_message_bits
            .max(dd.dd_report.max_message_bits),
        &mut t,
    );
    let fr = run_simple_mst(&g, 8);
    add(
        "SimpleMST(k=8)",
        fr.report.rounds,
        fr.report.messages,
        fr.report.max_message_bits,
        &mut t,
    );
    let clusters: Vec<u64> = g.nodes().map(|v| g.id_of(v)).collect();
    let pl = run_pipeline(&g, NodeId(0), &clusters, true, false);
    add(
        "Pipeline (singletons)",
        pl.report.rounds,
        pl.report.messages,
        pl.report.max_message_bits,
        &mut t,
    );
    let fm = fast_mst(&g);
    add(
        "Fast-MST pipeline stage",
        fm.pipeline_rounds,
        fm.pipeline_report.messages,
        fm.pipeline_report.max_message_bits,
        &mut t,
    );
    t.note("every message fits in a constant number of O(log n)-bit words (≤160 bits)");
    t
}

/// E13 — ablation: the k-sweep behind Theorem 5.6's k = √n choice.
pub fn e13(quick: bool) -> Table {
    let mut t = Table::new(
        "E13 — ablation: Fast-MST k-sweep (k = n^α)",
        &[
            "n",
            "k",
            "alpha",
            "total",
            "frag",
            "partition",
            "pipeline+bfs",
            "mst ok",
        ],
    );
    let n = if quick { 256 } else { 1024 };
    let g = Family::Grid.generate(n, 71);
    let n = g.node_count();
    for alpha in [0.25f64, 0.4, 0.5, 0.6, 0.75] {
        let k = ((n as f64).powf(alpha).round() as usize).max(1);
        let run = fast_mst_with_k(&g, k);
        let ok = t.check(is_mst(&g, &run.mst_edges)).to_string();
        t.row(vec![
            n.to_string(),
            k.to_string(),
            format!("{alpha:.2}"),
            run.total_rounds().to_string(),
            run.fragment_rounds.to_string(),
            run.partition_charge.rounds.to_string(),
            (run.bfs_rounds + run.pipeline_rounds).to_string(),
            ok,
        ]);
    }
    t.note("fragment+partition cost grows with k; pipeline cost shrinks (fewer clusters): the optimum sits near α = 1/2");
    t
}

/// E14 — ablation: within-cluster solver (faithful DiamDOM census vs the
/// exact DP) inside FastDOM_T.
pub fn e14(quick: bool) -> Table {
    let mut t = Table::new(
        "E14 — ablation: FastDOM_T within-cluster solver",
        &[
            "family",
            "n",
            "k",
            "|D| DP",
            "|D| DiamDOM",
            "bound",
            "DP≤bound",
            "both dominate",
        ],
    );
    for fam in Family::TREES {
        let n = if quick { 256 } else { 1024 };
        let k = 5;
        let g = fam.generate(n, 73);
        let n = g.node_count();
        let dp = fast_dom_t(&g, k, WithinCluster::OptimalDp);
        let dd = fast_dom_t(&g, k, WithinCluster::DiamDom);
        let ok_dp = t
            .check(dp.dominators().len() <= dominating_size_bound(n, k))
            .to_string();
        let ok_both = t
            .check(
                check_k_dominating(&g, dp.dominators(), k).is_ok()
                    && check_k_dominating(&g, dd.dominators(), k).is_ok(),
            )
            .to_string();
        t.row(vec![
            fam.to_string(),
            n.to_string(),
            k.to_string(),
            dp.dominators().len().to_string(),
            dd.dominators().len().to_string(),
            dominating_size_bound(n, k).to_string(),
            ok_dp,
            ok_both,
        ]);
    }
    t.note(
        "the census solver may exceed the floor bound by one per coarse cluster (root completion)",
    );
    t
}

/// E15 — the FastMST crossover: rounds vs diameter at fixed n, via broom
/// graphs interpolating star → path.
pub fn e15(quick: bool) -> Table {
    let mut t = Table::new(
        "E15 — crossover: Fast-MST vs phase-doubling as Diam grows (brooms, fixed n)",
        &["n", "handle", "Diam", "fast", "phase-dbl", "winner"],
    );
    let n = if quick { 200 } else { 600 };
    for frac in [0.05f64, 0.2, 0.5, 0.8, 0.98] {
        let handle = ((n as f64 * frac) as usize).clamp(1, n - 1);
        let g = kdom_graph::generators::broom(
            &kdom_graph::generators::GenConfig::with_seed(n, 79),
            handle,
        );
        let fast = fast_mst(&g);
        let pd = phase_doubling_mst(&g);
        t.check(is_mst(&g, &fast.mst_edges) && is_mst(&g, &pd.mst_edges));
        let winner = if fast.total_rounds() <= pd.rounds {
            "fast"
        } else {
            "phase-dbl"
        };
        t.row(vec![
            n.to_string(),
            handle.to_string(),
            diameter(&g).to_string(),
            fast.total_rounds().to_string(),
            pd.rounds.to_string(),
            winner.to_string(),
        ]);
    }
    t.note("Theorem 5.6 wins whenever Diam ≪ n; at Diam ≈ n both are Θ(n)");
    t
}

/// E16 — growth shape: total rounds vs n on grids (Diam ≈ √n). Fast-MST
/// should grow like √n·log* n, pipeline-only and phase-doubling like n.
pub fn e16(quick: bool) -> Table {
    let mut t = Table::new(
        "E16 — growth shape on grids: rounds vs n (Diam ≈ √n)",
        &[
            "n",
            "fast",
            "fast growth",
            "pipe-only",
            "pipe growth",
            "phase-dbl",
            "pd growth",
        ],
    );
    let ns: Vec<usize> = if quick {
        vec![64, 256, 1024]
    } else {
        vec![256, 1024, 4096]
    };
    let mut prev: Option<(u64, u64, u64)> = None;
    for &n in &ns {
        let g = Family::Grid.generate(n, 83);
        let fast = fast_mst(&g);
        let po = pipeline_only_mst(&g);
        let pd = phase_doubling_mst(&g);
        t.check(is_mst(&g, &fast.mst_edges) && is_mst(&g, &po.mst_edges));
        let growth = |cur: u64, prev: Option<u64>| match prev {
            Some(p) if p > 0 => format!("{:.2}x", cur as f64 / p as f64),
            _ => "-".to_string(),
        };
        t.row(vec![
            g.node_count().to_string(),
            fast.total_rounds().to_string(),
            growth(fast.total_rounds(), prev.map(|p| p.0)),
            po.rounds.to_string(),
            growth(po.rounds, prev.map(|p| p.1)),
            pd.rounds.to_string(),
            growth(pd.rounds, prev.map(|p| p.2)),
        ]);
        prev = Some((fast.total_rounds(), po.rounds, pd.rounds));
    }
    t.note("per 4x n: √n-shaped algorithms grow ~2x, linear ones ~4x — the Theorem 5.6 shape");
    t
}

/// E17 — distributed `FastDOM_T`: the within-cluster stage executed
/// per-node (measured), next to the charged model it replaces.
pub fn e17(quick: bool) -> Table {
    use kdom_core::dist::fastdom::fast_dom_t_distributed;
    let mut t = Table::new(
        "E17 — distributed FastDOM_T: measured within-cluster stage",
        &[
            "family",
            "n",
            "k",
            "|D|",
            "bound",
            "ok",
            "partition (charged)",
            "within (measured)",
            "msgs",
        ],
    );
    for fam in Family::TREES {
        for &n in &sizes(quick, &[512, 2048]) {
            for k in [3usize, 8] {
                let g = fam.generate(n, 89);
                let n = g.node_count();
                let res = fast_dom_t_distributed(&g, k, WithinCluster::OptimalDp);
                let ok = t
                    .check(check_fastdom_output(&g, &res.clustering, k).is_ok())
                    .to_string();
                t.row(vec![
                    fam.to_string(),
                    n.to_string(),
                    k.to_string(),
                    res.dominators().len().to_string(),
                    dominating_size_bound(n, k).to_string(),
                    ok,
                    res.partition_charge.rounds.to_string(),
                    res.within_report.rounds.to_string(),
                    res.within_report.messages.to_string(),
                ]);
            }
        }
    }
    t.note("within-cluster rounds are flat in n (they scale with the 5k+2 cluster radius), confirming the charged model's shape");
    t
}

/// E18 — §1.2's synchrony argument, executed: protocols run unchanged on
/// an asynchronous network under synchronizer α; outputs match and the
/// overhead is the predicted one-control-message-per-edge-per-pulse.
pub fn e18(quick: bool) -> Table {
    use kdom_congest::run_protocol_alpha;
    use kdom_core::dist::fragments::FragmentNode;
    let mut t = Table::new(
        "E18 — synchronizer α: async SimpleMST vs synchronous",
        &[
            "n",
            "max delay",
            "pulses",
            "virtual time",
            "payload msgs",
            "control msgs",
            "same MST",
        ],
    );
    let n = if quick { 64 } else { 196 };
    let g = Family::Grid.generate(n, 97);
    let k = 7;
    let sync = run_simple_mst(&g, k);
    let mut want = sync.tree_edges.clone();
    want.sort_unstable();
    for delay in [1u64, 3, 8] {
        let nodes: Vec<FragmentNode> = g
            .nodes()
            .map(|v| FragmentNode::new(k, g.id_of(v)))
            .collect();
        let (nodes, rep) =
            run_protocol_alpha(&g, nodes, delay, delay, 5_000_000).expect("α quiesces");
        let mut got: Vec<_> = g
            .nodes()
            .filter_map(|v| nodes[v.0].parent.map(|p| g.neighbors(v)[p.0].edge))
            .collect();
        got.sort_unstable();
        let ok = t.check(got == want).to_string();
        t.row(vec![
            g.node_count().to_string(),
            delay.to_string(),
            rep.pulses.to_string(),
            rep.virtual_time.to_string(),
            rep.payload_messages.to_string(),
            rep.control_messages.to_string(),
            ok,
        ]);
    }
    t.note("the async executions select the identical MST fragment edges; control traffic ≈ 2|E| per pulse, the [Al] overhead");
    t
}

/// E19 — low-diameter topologies (hypercube, torus, expander): the
/// regime Theorem 5.6 targets, where `Diam ≪ n` makes √n·log* n the
/// whole story.
pub fn e19(quick: bool) -> Table {
    use kdom_graph::generators::{expanderish, hypercube, torus, GenConfig};
    let mut t = Table::new(
        "E19 — low-diameter topologies: Fast-MST vs baselines",
        &[
            "topology",
            "n",
            "Diam",
            "fast",
            "pipe-only",
            "phase-dbl",
            "mst ok",
            "winner",
        ],
    );
    let specs: Vec<(String, Graph)> = if quick {
        vec![
            ("hypercube-8".into(), hypercube(8, 5)),
            ("torus-16x16".into(), torus(16, 16, 5)),
            (
                "expander-256".into(),
                expanderish(&GenConfig::with_seed(256, 5), 3),
            ),
        ]
    } else {
        vec![
            ("hypercube-10".into(), hypercube(10, 5)),
            ("hypercube-12".into(), hypercube(12, 5)),
            ("torus-32x32".into(), torus(32, 32, 5)),
            ("torus-64x64".into(), torus(64, 64, 5)),
            (
                "expander-1024".into(),
                expanderish(&GenConfig::with_seed(1024, 5), 3),
            ),
            (
                "expander-4096".into(),
                expanderish(&GenConfig::with_seed(4096, 5), 3),
            ),
        ]
    };
    for (name, g) in specs {
        let fast = fast_mst(&g);
        let po = pipeline_only_mst(&g);
        // phase-doubling is Θ(n) rounds; skip it at the largest sizes
        let pd = if g.node_count() <= 1100 {
            Some(phase_doubling_mst(&g))
        } else {
            None
        };
        let ok = t
            .check(
                is_mst(&g, &fast.mst_edges)
                    && is_mst(&g, &po.mst_edges)
                    && pd.as_ref().is_none_or(|r| is_mst(&g, &r.mst_edges))
                    && fast.stalls == 0,
            )
            .to_string();
        let mut rows = vec![("fast", fast.total_rounds()), ("pipe-only", po.rounds)];
        if let Some(pd) = &pd {
            rows.push(("phase-dbl", pd.rounds));
        }
        let winner = rows.iter().min_by_key(|(_, r)| *r).expect("non-empty").0;
        t.row(vec![
            name,
            g.node_count().to_string(),
            diameter(&g).to_string(),
            fast.total_rounds().to_string(),
            po.rounds.to_string(),
            pd.map_or("-".into(), |r| r.rounds.to_string()),
            ok,
            winner.to_string(),
        ]);
    }
    t.note("constant-degree low-diameter networks: the linear baselines pay Θ(n) while Fast-MST pays √n·log* n + O(log n)");
    t
}

/// E20 — the charge-model validation: the fully per-node distributed
/// `DOMPartition_1` (virtual Cole–Vishkin/MIS routed through real
/// clusters) next to the engine's charged rounds for the same task.
pub fn e20(quick: bool) -> Table {
    use kdom_core::dist::partition1::run_partition1;
    let mut t = Table::new(
        "E20 — per-node DOMPartition_1 (measured) vs cluster engine (charged)",
        &[
            "family", "n", "k", "clusters", "min size", "≥k+1", "measured", "charged", "ratio",
        ],
    );
    for fam in [Family::Path, Family::RandomTree, Family::Caterpillar] {
        let n = if quick { 128 } else { 1024 };
        for k in [3usize, 7, 15] {
            let g = fam.generate(n, 101);
            let n = g.node_count();
            let (nodes, report) = run_partition1(&g, NodeId(0), k);
            let mut sizes = std::collections::HashMap::new();
            for v in g.nodes() {
                *sizes.entry(nodes[v.0].cluster).or_insert(0usize) += 1;
            }
            let min_size = sizes.values().copied().min().unwrap_or(0);
            let ok = t.check(min_size >= (k + 1).min(n)).to_string();
            let (snodes, edges) = scope(&g);
            let charged = dom_partition_1(&g, snodes, &edges, k).charge.rounds;
            t.row(vec![
                fam.to_string(),
                n.to_string(),
                k.to_string(),
                sizes.len().to_string(),
                min_size.to_string(),
                ok,
                report.rounds.to_string(),
                charged.to_string(),
                format!("{:.2}x", report.rounds as f64 / charged.max(1) as f64),
            ]);
        }
    }
    t.note("the per-node run budgets phases by the a-priori radius bound 3^i while the engine charges actual radii, so the measured/charged ratio reflects bound-vs-actual slack, not model error");
    t
}

/// E21 — engine scaling: the shared round engine (active-set scheduling,
/// flat message arena, optional sharded parallelism) against the
/// pre-refactor reference loop, with byte-identical outputs as the hard
/// check and wall-clock speedups reported. Writes `BENCH_e21.json` at
/// the repo root (never `BENCH_engine.json` — that is the regression
/// gate's committed baseline, owned by the engine bench).
pub fn e21(quick: bool) -> Table {
    use kdom_congest::engine::run_reference_loop;
    use kdom_congest::{EngineConfig, Scheduling, Simulator};
    use kdom_core::dist::bfs::BfsNode;
    use kdom_core::dist::fragments::FragmentNode;
    use std::time::Instant;

    let mut t = Table::new(
        "E21 — round-engine scaling vs the pre-refactor loop",
        &[
            "target",
            "n",
            "rounds",
            "identical",
            "legacy",
            "full-scan",
            "active-set",
            "act-4t",
            "best speedup",
        ],
    );
    let reps = if quick { 1 } else { 3 };
    let median = |f: &mut dyn FnMut()| -> f64 {
        let mut xs: Vec<f64> = (0..reps)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64()
            })
            .collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };
    let ms = |s: f64| format!("{:.1} ms", s * 1e3);
    let cfg = |sched, threads| {
        EngineConfig::default()
            .with_scheduling(sched)
            .with_threads(threads)
    };

    let bfs_n = if quick { 400 } else { 2000 };
    let grid_n = if quick { 400 } else { 2500 };
    let bfs_g = Family::Path.generate(bfs_n, 0);
    let mst_g = Family::Grid.generate(grid_n, 7);
    let k = if quick { 9 } else { 25 };

    enum Which {
        Bfs,
        Mst,
    }
    for (label, g, which) in [
        ("BFS/path", &bfs_g, Which::Bfs),
        ("SimpleMST/grid", &mst_g, Which::Mst),
    ] {
        macro_rules! drive {
            ($make:expr) => {{
                let make = $make;
                let (ref_nodes, ref_report) =
                    run_reference_loop(g, make(), 1_000_000).expect("reference quiesces");
                let want = format!("{ref_nodes:?}{ref_report:?}");
                let mut identical = true;
                let mut check = |c: EngineConfig| {
                    let mut sim = Simulator::with_config(g, make(), c);
                    sim.run(1_000_000).expect("engine quiesces");
                    // the reference loop predates memory tracking, so the
                    // peak is zeroed before the byte-identity comparison;
                    // every other field must match exactly
                    let mut got = sim.report().clone();
                    got.peak_memory_bytes = 0;
                    identical &= want == format!("{:?}{:?}", sim.nodes(), got);
                };
                let timed = |c: EngineConfig| -> f64 {
                    median(&mut || {
                        let mut sim = Simulator::with_config(g, make(), c);
                        let _ = std::hint::black_box(sim.run(1_000_000));
                    })
                };
                // parity is checked on every leg; timing of the 4-thread
                // leg is skipped on undersubscribed machines so it never
                // produces a baseline row
                let bench4 = crate::harness::can_bench_threads(4);
                check(cfg(Scheduling::FullScan, 1));
                check(cfg(Scheduling::ActiveSet, 1));
                check(cfg(Scheduling::ActiveSet, 4));
                let full = timed(cfg(Scheduling::FullScan, 1));
                let active = timed(cfg(Scheduling::ActiveSet, 1));
                let act4 = bench4.then(|| timed(cfg(Scheduling::ActiveSet, 4)));
                let legacy = median(&mut || {
                    let _ = std::hint::black_box(run_reference_loop(g, make(), 1_000_000));
                });
                for (leg, secs) in [
                    ("legacy-loop", Some(legacy)),
                    ("full-scan-1t", Some(full)),
                    ("active-set-1t", Some(active)),
                    ("active-set-4t", act4),
                ] {
                    let Some(secs) = secs else { continue };
                    let name = format!("e21/{label}/{leg}");
                    crate::harness::record_measurement(&name, secs);
                    crate::harness::note_rounds(&name, ref_report.rounds);
                }
                let ok = t.check(identical).to_string();
                let denom = act4.map_or(full.min(active), |a| full.min(active).min(a));
                let best = legacy / denom;
                t.row(vec![
                    label.to_string(),
                    g.node_count().to_string(),
                    ref_report.rounds.to_string(),
                    ok,
                    ms(legacy),
                    ms(full),
                    ms(active),
                    act4.map(ms).unwrap_or_else(|| "skip".to_string()),
                    format!("{best:.2}x"),
                ]);
            }};
        }
        match which {
            Which::Bfs => {
                drive!(|| (0..g.node_count())
                    .map(|v| BfsNode::new(v == 0))
                    .collect::<Vec<_>>())
            }
            Which::Mst => {
                drive!(|| g
                    .nodes()
                    .map(|v| FragmentNode::new(k, g.id_of(v)))
                    .collect::<Vec<_>>())
            }
        }
    }
    // deliberately NOT write_engine_json: that file is the CI regression
    // gate's committed baseline, keyed to the engine bench's target
    // names — e21 (which also runs under `cargo test` via the quick
    // suite) writing there would silently replace it with names the
    // gate never matches
    match crate::harness::write_json("BENCH_e21.json") {
        Ok(path) => t.note(format!("wrote {}", path.display())),
        Err(e) => {
            t.check(false);
            t.note(format!("failed to write BENCH_e21.json: {e}"));
        }
    }
    t.note("hard checks assert byte-identical outputs only; speedups are machine-dependent (multi-thread legs need multi-core hosts to win)");
    t
}

/// E22 — churn recovery: rounds spent by the incremental re-fixup vs a
/// full restart, broken down by event type. The incremental path's
/// scope is the union of old fragments an event touched; its recovery
/// run simulates only that induced subgraph, and the sequential
/// certificate falls back to a full restart whenever a merge would have
/// crossed the dirty/clean boundary.
pub fn e22(quick: bool) -> Table {
    use kdom_congest::faults::{apply_churn, ChurnEvent};
    use kdom_congest::EngineConfig;
    use kdom_core::dist::executor::Executor;
    use kdom_core::dist::fragments::run_simple_mst_configured;
    use kdom_core::dist::refixup::refixup_fragments;
    use kdom_core::fragments::simple_mst_forest;

    let mut t = Table::new(
        "E22 — churn recovery: incremental re-fixup vs full restart by event type",
        &[
            "family",
            "n",
            "k",
            "event",
            "mode",
            "scope",
            "rec rounds",
            "full rounds",
            "saved",
            "oracle",
        ],
    );
    let exec = Executor::Sync;
    let config = EngineConfig::default();
    let k = 3usize;
    for (fam, n) in [
        (Family::Grid, if quick { 64 } else { 400 }),
        (Family::RandomTree, if quick { 64 } else { 300 }),
        (Family::Gnp, if quick { 64 } else { 256 }),
    ] {
        let g = fam.generate(n, 131);
        let old = run_simple_mst_configured(&g, k, &exec, config);
        let max_id = g.nodes().map(|v| g.id_of(v)).max().unwrap_or(0);
        let max_w = g.edges().iter().map(|e| e.weight).max().unwrap_or(0);
        // one representative event per type, all valid on `g`
        let leaver = g
            .nodes()
            .min_by_key(|&v| g.degree(v))
            .expect("non-empty graph");
        let heavy = g
            .edges()
            .iter()
            .max_by_key(|e| e.weight)
            .copied()
            .expect("graph has edges");
        let join_targets: Vec<u64> = g.nodes().take(2).map(|v| g.id_of(v)).collect();
        let nonadjacent = g
            .nodes()
            .flat_map(|u| g.nodes().map(move |v| (u, v)))
            .find(|&(u, v)| u < v && g.edge_between(u, v).is_none())
            .expect("graph is not complete");
        let events: Vec<(&str, ChurnEvent)> = vec![
            (
                "leave",
                ChurnEvent::NodeLeave {
                    id: g.id_of(leaver),
                },
            ),
            (
                "join",
                ChurnEvent::NodeJoin {
                    id: max_id + 1,
                    links: join_targets
                        .iter()
                        .enumerate()
                        .map(|(i, &t)| (t, max_w + 1 + i as u64))
                        .collect(),
                },
            ),
            (
                "weight",
                ChurnEvent::EdgeWeightChange {
                    a: g.id_of(heavy.u),
                    b: g.id_of(heavy.v),
                    weight: max_w + 1,
                },
            ),
            (
                "insert",
                ChurnEvent::EdgeInsert {
                    a: g.id_of(nonadjacent.0),
                    b: g.id_of(nonadjacent.1),
                    weight: max_w + 1,
                },
            ),
            (
                "remove",
                ChurnEvent::EdgeRemove {
                    a: g.id_of(heavy.u),
                    b: g.id_of(heavy.v),
                },
            ),
        ];
        for (label, ev) in events {
            let events = [ev];
            let (next, remap) = match apply_churn(&g, &events) {
                Ok(x) => x,
                Err(e) => {
                    t.check(false);
                    t.note(format!("{fam}/{label}: event does not apply: {e}"));
                    continue;
                }
            };
            let fix = refixup_fragments(&g, &old, &next, &remap, &events, k, &exec, config, 0);
            let full = run_simple_mst_configured(&next, k, &exec, config);
            // independent oracle check (the re-fixup certificate aside)
            let oracle = simple_mst_forest(&next, k);
            let mut fe = fix.fragments.tree_edges.clone();
            fe.sort_unstable();
            let mut oe = oracle.tree_edges.clone();
            oe.sort_unstable();
            let ok = t.check(fe == oe).to_string();
            let rec_rounds = fix.fragments.report.rounds;
            let full_rounds = full.report.rounds;
            t.row(vec![
                fam.to_string(),
                next.node_count().to_string(),
                k.to_string(),
                label.to_string(),
                if fix.full_restart { "full" } else { "incr" }.to_string(),
                format!("{}/{}", fix.scope, next.node_count()),
                rec_rounds.to_string(),
                full_rounds.to_string(),
                if fix.full_restart {
                    "-".to_string()
                } else {
                    format!(
                        "{:.0}%",
                        100.0 * (1.0 - rec_rounds as f64 / full_rounds.max(1) as f64)
                    )
                },
                ok,
            ]);
        }
    }
    t.note("rec rounds = the repair's protocol rounds (0 = pure splice, no run needed); SimpleMST's schedule is fixed in k, so incremental savings show up in *nodes simulated* (scope) and in the messages the smaller subgraph exchanges, not in round count — except when the splice avoids the run entirely");
    t.note("mode=full on dense G(n,p) is expected: one event's fragment neighborhood covers most of the graph, and the certificate falls back whenever a merge crosses the dirty/clean boundary");
    t
}

/// E23 — thread-scaling on streamed large graphs: BFS over `G(n, m)`
/// graphs at 10^5–10^6 nodes (quick: 10^4), engine-only legs at 1, 2,
/// and 4 threads. The hard checks are byte-identical node states and
/// `RunReport`s — `peak_memory_bytes` included, since the destination-
/// sharded merge must report the same staging peak at every thread
/// count — plus a nonzero reported peak. Wall-clock columns are
/// informational; multi-thread legs are only *timed* on machines with
/// enough CPUs (`can_bench_threads`), so an undersubscribed host shows
/// "skip" instead of a misleading slowdown.
pub fn e23(quick: bool) -> Table {
    use kdom_congest::{EngineConfig, Simulator};
    use kdom_core::dist::bfs::BfsNode;
    use kdom_graph::generators::{gnm_connected, GenConfig};
    use std::time::Instant;

    let mut t = Table::new(
        "E23 — thread scaling on streamed graphs (BFS over G(n, m))",
        &[
            "n",
            "m",
            "rounds",
            "peak mem",
            "identical",
            "1t",
            "2t",
            "4t",
            "4t/1t",
        ],
    );
    let reps = if quick { 1 } else { 3 };
    let median = |f: &mut dyn FnMut()| -> f64 {
        let mut xs: Vec<f64> = (0..reps)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64()
            })
            .collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };
    let ms = |s: f64| format!("{:.1} ms", s * 1e3);
    // shard_min low enough that even the sparse early/late frontiers of
    // the BFS wave split into multiple shards — every parallel round
    // takes the bucketed merge
    let cfg = |threads| {
        EngineConfig::default()
            .with_threads(threads)
            .with_shard_min(64)
    };

    let sizes: &[usize] = if quick {
        &[10_000]
    } else {
        &[100_000, 1_000_000]
    };
    for &n in sizes {
        let m = 2 * n;
        let g = gnm_connected(&GenConfig::with_seed(n, 23), m);
        let make = || {
            (0..g.node_count())
                .map(|v| BfsNode::new(v == 0))
                .collect::<Vec<_>>()
        };
        let mut baseline: Option<(String, u64, u64)> = None;
        let mut identical = true;
        let mut times: Vec<Option<f64>> = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut sim = Simulator::with_config(&g, make(), cfg(threads));
            sim.run(1_000_000).expect("BFS quiesces");
            let got = format!("{:?}{:?}", sim.nodes(), sim.report());
            let rounds = sim.report().rounds;
            let peak = sim.report().peak_memory_bytes;
            identical &= peak > 0;
            match &baseline {
                None => baseline = Some((got, rounds, peak)),
                Some((want, _, _)) => identical &= *want == got,
            }
            let timed = threads == 1 || crate::harness::can_bench_threads(threads);
            let secs = timed.then(|| {
                median(&mut || {
                    let mut sim = Simulator::with_config(&g, make(), cfg(threads));
                    let _ = std::hint::black_box(sim.run(1_000_000));
                })
            });
            if let Some(secs) = secs {
                let name = format!("e23/bfs_gnm{n}/{threads}t");
                crate::harness::record_measurement(&name, secs);
                crate::harness::note_rounds(&name, rounds);
            }
            times.push(secs);
        }
        let (_, rounds, peak) = baseline.expect("at least one leg ran");
        let ok = t.check(identical).to_string();
        let col = |i: usize| times[i].map(ms).unwrap_or_else(|| "skip".to_string());
        let scaling = match (times[0], times[2]) {
            (Some(t1), Some(t4)) => format!("{:.2}x", t1 / t4),
            _ => "-".to_string(),
        };
        t.row(vec![
            n.to_string(),
            m.to_string(),
            rounds.to_string(),
            format!("{:.1} MiB", peak as f64 / (1024.0 * 1024.0)),
            ok,
            col(0),
            col(1),
            col(2),
            scaling,
        ]);
    }
    t.note("identical = node states and the full RunReport (peak memory included) agree byte-for-byte across 1/2/4 threads; the graphs come from the streaming G(n, m) generator, so no intermediate edge lists are materialized at any size");
    t.note("timing columns are machine-dependent; multi-thread legs are skipped (not timed) when the host has fewer CPUs than the leg needs");
    t
}

/// Runs every experiment.
pub fn all(quick: bool) -> Vec<Table> {
    vec![
        e1(quick),
        e2(quick),
        e3(quick),
        e4(quick),
        e5(quick),
        e6(quick),
        e7(quick),
        e8(quick),
        e9(quick),
        e10(quick),
        e11(quick),
        e12(quick),
        e13(quick),
        e14(quick),
        e15(quick),
        e16(quick),
        e17(quick),
        e18(quick),
        e19(quick),
        e20(quick),
        e21(quick),
        e22(quick),
        e23(quick),
    ]
}

/// Looks an experiment up by id ("e1" … "e15").
pub fn by_name(name: &str, quick: bool) -> Option<Table> {
    Some(match name {
        "e1" => e1(quick),
        "e2" => e2(quick),
        "e3" => e3(quick),
        "e4" => e4(quick),
        "e5" => e5(quick),
        "e6" => e6(quick),
        "e7" => e7(quick),
        "e8" => e8(quick),
        "e9" => e9(quick),
        "e10" => e10(quick),
        "e11" => e11(quick),
        "e12" => e12(quick),
        "e13" => e13(quick),
        "e14" => e14(quick),
        "e15" => e15(quick),
        "e16" => e16(quick),
        "e17" => e17(quick),
        "e18" => e18(quick),
        "e19" => e19(quick),
        "e20" => e20(quick),
        "e21" => e21(quick),
        "e22" => e22(quick),
        "e23" => e23(quick),
        _ => return None,
    })
}

// `Charge` is re-exported through FastMstRun; silence the otherwise
// unused import lint when compiling without it.
#[allow(unused)]
fn _charge_is_used(c: Charge) -> u64 {
    c.rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_all_checks_pass() {
        for table in all(true) {
            assert!(table.all_ok, "{} failed:\n{table}", table.title);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("e9", true).is_some());
        assert!(by_name("e99", true).is_none());
    }
}
