//! Experiment harness for the Kutten–Peleg reproduction.
//!
//! [`exps`] contains one function per experiment (E1–E15, see DESIGN.md
//! §3 for the claim ↔ experiment mapping); [`table`] renders their
//! outputs. The `experiments` binary drives them; `EXPERIMENTS.md` holds
//! a curated full-run record. Wall-clock benches live under `benches/`,
//! driven by the dependency-free [`harness`] module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exps;
pub mod harness;
pub mod table;
