//! Minimal aligned-text tables for the experiment harness.

use std::fmt;

/// One experiment's output: a titled table plus a pass/fail verdict.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id + claim, e.g. "E2 — Lemma 2.3 (DiamDOM rounds)".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Human-readable notes (deviations, expectations).
    pub notes: Vec<String>,
    /// Whether every checked property held.
    pub all_ok: bool,
}

impl Table {
    /// Starts an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            all_ok: true,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a note printed under the table.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Records a property-check outcome; failures flip the verdict.
    pub fn check(&mut self, ok: bool) -> &'static str {
        if !ok {
            self.all_ok = false;
        }
        if ok {
            "ok"
        } else {
            "FAIL"
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:>w$}  ", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        writeln!(
            f,
            "  verdict: {}",
            if self.all_ok {
                "ALL CHECKS PASSED"
            } else {
                "CHECKS FAILED"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T — demo", &["a", "b"]);
        t.row(vec!["1".into(), "long".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("== T — demo =="));
        assert!(s.contains("note: hello"));
        assert!(s.contains("ALL CHECKS PASSED"));
    }

    #[test]
    fn check_flips_verdict() {
        let mut t = Table::new("T", &["a"]);
        assert_eq!(t.check(true), "ok");
        assert_eq!(t.check(false), "FAIL");
        assert!(!t.all_ok);
        assert!(t.to_string().contains("CHECKS FAILED"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_enforced() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
