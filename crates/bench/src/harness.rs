//! A tiny self-contained wall-clock benchmark harness.
//!
//! Exposes the subset of the `criterion` API the benches under
//! `benches/` consume — [`Criterion`], benchmark groups,
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — so the workspace needs **no external crates** to time its
//! experiments. Timing is plain [`std::time::Instant`]: per benchmark a
//! short warm-up, then batched measurement until a time budget is spent,
//! reporting min/mean/median over the batches.
//!
//! The budget is tuned via `KDOM_BENCH_MS` (milliseconds per benchmark,
//! default 300); set `KDOM_BENCH_MS=0` for a single-iteration smoke run
//! (useful in CI, where only "does it run" matters).

use std::time::{Duration, Instant};

/// Top-level harness handle (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _c: self, name }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), f);
        self
    }
}

/// A named collection of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for `criterion` compatibility; this harness sizes batches
    /// by time budget instead, so the hint is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Times `f` under `name` within this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name.into()), f);
        self
    }

    /// Ends the group (output is flushed eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    /// Iterations the routine should run this batch.
    iters: u64,
    /// Measured duration of the batch, filled in by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine`, keeping its output alive via `black_box` so
    /// the optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn budget() -> Duration {
    let ms = std::env::var("KDOM_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let budget = budget();
    // One probe iteration: warms caches and sizes the batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let probe = b.elapsed.max(Duration::from_nanos(1));
    if budget.is_zero() {
        eprintln!("  {name}: {} (smoke run)", fmt_dur(probe));
        return;
    }
    // Batch size targeting ~10 batches within the budget.
    let per_batch = budget.as_nanos() / 10;
    let iters = (per_batch / probe.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut samples: Vec<f64> = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 3 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
        if samples.len() >= 1000 {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    eprintln!(
        "  {name}: min {} / median {} / mean {}  ({} batches × {iters} iters)",
        fmt_secs(min),
        fmt_secs(median),
        fmt_secs(mean),
        samples.len(),
    );
}

fn fmt_secs(s: f64) -> String {
    fmt_dur(Duration::from_secs_f64(s))
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a plain
            // wall-clock harness can ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_runs_function() {
        std::env::set_var("KDOM_BENCH_MS", "0");
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("t");
            g.bench_function("inc", |b| {
                runs += 1;
                b.iter(|| 1 + 1)
            });
            g.finish();
        }
        assert!(runs >= 1);
    }

    #[test]
    fn durations_format_across_scales() {
        assert!(fmt_dur(Duration::from_nanos(5)).contains("ns"));
        assert!(fmt_dur(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_dur(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_dur(Duration::from_secs(5)).contains("s"));
    }
}
