//! A tiny self-contained wall-clock benchmark harness.
//!
//! Exposes the subset of the `criterion` API the benches under
//! `benches/` consume — [`Criterion`], benchmark groups,
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — so the workspace needs **no external crates** to time its
//! experiments. Timing is plain [`std::time::Instant`]: per benchmark a
//! short warm-up, then batched measurement until a time budget is spent,
//! reporting min/mean/median over the batches.
//!
//! The budget is tuned via `KDOM_BENCH_MS` (milliseconds per benchmark,
//! default 300); set `KDOM_BENCH_MS=0` for a single-iteration smoke run
//! (useful in CI, where only "does it run" matters).

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One recorded measurement, kept for [`write_engine_json`].
#[derive(Clone, Debug)]
struct Sample {
    name: String,
    /// Codec mode the target ran under (e.g. `wire-exact`, `zero-copy`).
    /// Part of the gate's matching key, so a mode flip can never compare
    /// a wire-exact median against a zero-copy baseline row.
    mode: Option<String>,
    median_secs: f64,
    rounds: Option<u64>,
    extras: Vec<(String, u64)>,
}

/// Every benchmark run in this process, in execution order. Smoke runs
/// (`KDOM_BENCH_MS=0`) record their single probe iteration so CI can
/// still emit an artifact.
static RESULTS: Mutex<Vec<Sample>> = Mutex::new(Vec::new());

/// Records a measurement taken outside [`Criterion`] (the experiments
/// binary times its engine-scaling legs directly) so it lands in
/// [`write_engine_json`] alongside harness-timed targets.
pub fn record_measurement(name: &str, median_secs: f64) {
    record(name, median_secs);
}

fn record(name: &str, median_secs: f64) {
    let mut r = RESULTS.lock().unwrap();
    r.push(Sample {
        name: name.to_string(),
        mode: None,
        median_secs,
        rounds: None,
        extras: Vec::new(),
    });
}

/// Attaches a round count to the most recent measurement named `name`,
/// so [`write_engine_json`] can report rounds/second.
pub fn note_rounds(name: &str, rounds: u64) {
    let mut r = RESULTS.lock().unwrap();
    if let Some(s) = r.iter_mut().rev().find(|s| s.name == name) {
        s.rounds = Some(rounds);
    }
}

/// Tags the most recent measurement named `name` with the codec mode it
/// ran under (`"wire-exact"` / `"zero-copy"`). The mode becomes part of
/// the regression gate's matching key: a target row only gates against a
/// baseline row with the *same* name **and** mode, so flipping the
/// default codec can never silently compare wire-exact medians against
/// zero-copy baselines (they just stop matching until the baseline is
/// regenerated).
pub fn note_mode(name: &str, mode: &str) {
    let mut r = RESULTS.lock().unwrap();
    if let Some(s) = r.iter_mut().rev().find(|s| s.name == name) {
        s.mode = Some(mode.to_string());
    }
}

/// Attaches an auxiliary integer field (e.g. fast-forward skip counts)
/// to the most recent measurement named `name`. Extras are appended
/// after `median_secs` in the JSON row; [`check_regression_gate`]'s
/// line scrape ignores them, so they never affect the gate.
pub fn note_extra(name: &str, key: &str, value: u64) {
    let mut r = RESULTS.lock().unwrap();
    if let Some(s) = r.iter_mut().rev().find(|s| s.name == name) {
        s.extras.push((key.to_string(), value));
    }
}

/// Whether this machine can honestly *time* a `threads`-way leg:
/// requires `available_parallelism() >= threads`. When undersubscribed
/// it logs the skip to stderr and returns `false` — callers must then
/// neither record the measurement nor let it into a baseline file, or
/// an undersubscribed machine would write multi-thread rows that a real
/// multi-core host is later gated against. Byte-identity checks of
/// multi-thread legs are unaffected: correctness does not need real
/// parallelism, only timing does.
pub fn can_bench_threads(threads: usize) -> bool {
    let nproc = std::thread::available_parallelism().map_or(0, usize::from);
    if nproc >= threads {
        return true;
    }
    eprintln!("kdom-bench: skipping {threads}-thread timing legs: only {nproc} CPU(s) available");
    false
}

/// Writes every recorded measurement to `BENCH_engine.json` at the repo
/// root: per-target median wall-clock seconds, plus rounds/second where
/// [`note_rounds`] was called. Returns the path written.
///
/// This file is the regression-gate baseline
/// ([`check_regression_gate`]), so only the engine bench — whose target
/// names the gate matches on — may call this. Everything else (the e21
/// experiment) goes through [`write_json`] with its own file name;
/// history shows why: e21 runs inside `cargo test` via the quick-suite
/// test and used to silently replace the committed baseline with
/// targets the gate never matches, turning the gate into a vacuous
/// pass.
pub fn write_engine_json() -> std::io::Result<PathBuf> {
    write_json("BENCH_engine.json")
}

/// Writes every recorded measurement to `file_name` at the repo root in
/// the `BENCH_engine.json` format. Returns the path written.
pub fn write_json(file_name: &str) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(file_name);
    let results = RESULTS.lock().unwrap();
    let nproc = std::thread::available_parallelism().map_or(0, usize::from);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"nproc\": {nproc},\n"));
    out.push_str("  \"targets\": [\n");
    for (i, s) in results.iter().enumerate() {
        let name = s.name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!("    {{\"name\": \"{name}\""));
        if let Some(mode) = &s.mode {
            let mode = mode.replace('\\', "\\\\").replace('"', "\\\"");
            out.push_str(&format!(", \"mode\": \"{mode}\""));
        }
        out.push_str(&format!(", \"median_secs\": {:.9}", s.median_secs));
        if let Some(rounds) = s.rounds {
            let rps = rounds as f64 / s.median_secs.max(1e-12);
            out.push_str(&format!(
                ", \"rounds\": {rounds}, \"rounds_per_sec\": {rps:.1}"
            ));
        }
        for (key, value) in &s.extras {
            let key = key.replace('\\', "\\\\").replace('"', "\\\"");
            out.push_str(&format!(", \"{key}\": {value}"));
        }
        out.push('}');
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out)?;
    eprintln!("wrote {}", path.display());
    Ok(path)
}

/// Compares the measurements recorded so far against the **committed**
/// `BENCH_engine.json` and panics if any shared engine target got slower
/// beyond the tolerance. Call this *before* [`write_engine_json`]
/// replaces the baseline.
///
/// The comparison is **machine-relative**: the `legacy-loop` legs (the
/// frozen pre-engine reference loop, re-measured in this very run) serve
/// as a speed probe for the current host. Each baseline median is scaled
/// by the median `fresh / baseline` ratio over the shared legacy-loop
/// legs before comparing, so a runner 3× slower than the machine that
/// committed the baseline does not fail spuriously — and a faster runner
/// does not mask a real regression.
///
/// Opt-in: runs only when `KDOM_BENCH_GATE=1` (CI sets the variable on a
/// dedicated non-smoke job). `KDOM_BENCH_TOLERANCE` sets the allowed
/// calibrated slowdown in percent (default 15). Targets present on only
/// one side are ignored, so adding or retiring benchmarks never trips
/// the gate — but with the gate on, an unreadable baseline, a stale
/// scrape that parses nothing, or zero shared targets is an error, never
/// a silent pass.
pub fn check_regression_gate() {
    // fail-fast flag parse: `KDOM_BENCH_GATE=yes please` must abort, not
    // silently skip the gate (the historical `!= Ok("1")` did exactly that)
    if !kdom_graph::knob::knob_flag("KDOM_BENCH_GATE", false) {
        return;
    }
    let tolerance_pct = kdom_graph::knob::knob("KDOM_BENCH_TOLERANCE", 15.0f64);
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine.json"
    ));
    let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "bench gate: cannot read committed baseline {}: {e}",
            path.display()
        )
    });
    let old = parse_medians(&baseline);
    assert!(
        !old.is_empty(),
        "bench gate: parsed no medians from {} — did write_engine_json's format drift?",
        path.display()
    );
    let results = RESULTS.lock().unwrap();

    // calibrate: how fast is this machine relative to the one that
    // committed the baseline, per the shared legacy-loop legs?
    let is_probe = |name: &str| name.ends_with("/legacy-loop");
    let mut ratios: Vec<f64> = results
        .iter()
        .filter(|s| is_probe(&s.name) && s.median_secs > 0.0)
        .filter_map(|s| {
            old.iter()
                .find(|(n, mode, m)| n == &s.name && mode == &s.mode && *m > 0.0)
                .map(|(_, _, m)| s.median_secs / m)
        })
        .collect();
    assert!(
        !ratios.is_empty(),
        "bench gate: no shared legacy-loop probe targets to calibrate against"
    );
    ratios.sort_by(|a, b| a.total_cmp(b));
    let speed = ratios[ratios.len() / 2];

    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for s in results.iter().filter(|s| !is_probe(&s.name)) {
        let Some(&was) = old
            .iter()
            // the mode is part of the key: a wire-exact median never
            // gates against a zero-copy baseline row (or vice versa)
            .find(|(n, mode, _)| n == &s.name && mode == &s.mode)
            .map(|(_, _, m)| m)
        else {
            continue;
        };
        compared += 1;
        let allowed = was * speed * (1.0 + tolerance_pct / 100.0);
        if s.median_secs > allowed {
            regressions.push(format!(
                "  {}: {:.6}s -> {:.6}s (+{:.1}% machine-adjusted, tolerance {:.0}%)",
                s.name,
                was * speed,
                s.median_secs,
                (s.median_secs / (was * speed) - 1.0) * 100.0,
                tolerance_pct
            ));
        }
    }
    assert!(
        compared > 0,
        "bench gate: no engine targets shared with the committed baseline — gate would be vacuous"
    );
    // The inverse direction: a baseline row whose (name, mode) no
    // longer shows up in the fresh run means that target silently
    // stopped being gated — usually a renamed bench or a dropped mode.
    // Warn per row, and refuse to pass if the gate lost most of its
    // coverage.
    let baseline_rows: Vec<_> = old.iter().filter(|(n, _, _)| !is_probe(n)).collect();
    let mut unmatched = 0usize;
    for (name, mode, _) in &baseline_rows {
        if !results.iter().any(|s| &s.name == name && &s.mode == mode) {
            unmatched += 1;
            eprintln!(
                "bench gate: warning: baseline row {name} (mode {}) has no fresh counterpart — it is no longer gated",
                mode.as_deref().unwrap_or("-")
            );
        }
    }
    assert!(
        unmatched * 2 <= baseline_rows.len(),
        "bench gate: {unmatched} of {} baseline rows have no fresh counterpart — over half the \
         baseline is no longer exercised; refresh BENCH_engine.json or restore the missing targets",
        baseline_rows.len()
    );
    assert!(
        regressions.is_empty(),
        "bench gate: {} of {compared} targets regressed beyond {tolerance_pct}% (machine speed factor {speed:.3}):\n{}",
        regressions.len(),
        regressions.join("\n")
    );
    eprintln!(
        "bench gate: {compared} targets within {tolerance_pct}% of the committed baseline \
         (machine speed factor {speed:.3} from {} legacy-loop probes)",
        ratios.len()
    );
}

/// Extracts `(name, mode, median_secs)` triples from a
/// `BENCH_engine.json` document — a line-oriented scrape of the fixed
/// format [`write_engine_json`] emits, so the workspace stays
/// dependency-free. Rows without a `mode` field (older baselines)
/// parse as `None`.
fn parse_medians(json: &str) -> Vec<(String, Option<String>, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.split("\"name\": \"").nth(1) else {
            continue;
        };
        let Some(name) = rest.split('"').next() else {
            continue;
        };
        let mode = rest
            .split("\"mode\": \"")
            .nth(1)
            .and_then(|m| m.split('"').next())
            .map(str::to_string);
        let Some(med) = rest
            .split("\"median_secs\": ")
            .nth(1)
            .and_then(|m| m.split([',', '}']).next())
            .and_then(|m| m.trim().parse::<f64>().ok())
        else {
            continue;
        };
        out.push((name.to_string(), mode, med));
    }
    out
}

/// A log₂-bucketed latency histogram (nanosecond resolution).
///
/// Used by the engine bench's round profiler to summarize wall time per
/// *simulated* round: each executed round's duration lands in bucket
/// `⌊log₂ ns⌋`, so six decades of latency fit in 64 counters with no
/// allocation on the hot path. Rounds skipped wholesale by quiescence
/// fast-forward never reach the histogram — report them separately via
/// the engine's fast-forward counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    total_ns: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            total_ns: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().max(1);
        let bucket = (127 - ns.leading_zeros()).min(63) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns += ns;
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(u64::try_from(self.total_ns).unwrap_or(u64::MAX))
    }

    /// Upper bound of the bucket containing the q-th quantile
    /// (`0.0 ≤ q ≤ 1.0`), or zero for an empty histogram. Bucketed, so
    /// accurate to within a factor of 2 — plenty for spotting a
    /// heavy-tailed round distribution.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if b >= 63 { u64::MAX } else { 1u64 << (b + 1) };
                return Duration::from_nanos(upper);
            }
        }
        Duration::from_nanos(u64::MAX)
    }

    /// A one-line summary: count, mean, and bucketed p50/p90/p99.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "0 samples".to_string();
        }
        let mean = Duration::from_secs_f64(self.total_ns as f64 / 1e9 / self.count as f64);
        format!(
            "{} samples, mean {} / p50 ≤{} / p90 ≤{} / p99 ≤{}",
            self.count,
            fmt_dur(mean),
            fmt_dur(self.quantile(0.5)),
            fmt_dur(self.quantile(0.9)),
            fmt_dur(self.quantile(0.99)),
        )
    }

    /// Non-empty buckets as `(lower_ns, upper_ns, count)` rows.
    pub fn rows(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let lo = 1u64 << b;
                let hi = if b >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (b + 1)) - 1
                };
                (lo, hi, c)
            })
            .collect()
    }
}

/// Top-level harness handle (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _c: self, name }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), f);
        self
    }
}

/// A named collection of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for `criterion` compatibility; this harness sizes batches
    /// by time budget instead, so the hint is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Times `f` under `name` within this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name.into()), f);
        self
    }

    /// Ends the group (output is flushed eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    /// Iterations the routine should run this batch.
    iters: u64,
    /// Measured duration of the batch, filled in by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine`, keeping its output alive via `black_box` so
    /// the optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn budget() -> Duration {
    Duration::from_millis(kdom_graph::knob::knob("KDOM_BENCH_MS", 300u64))
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let budget = budget();
    // One probe iteration: warms caches and sizes the batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let probe = b.elapsed.max(Duration::from_nanos(1));
    if budget.is_zero() {
        eprintln!("  {name}: {} (smoke run)", fmt_dur(probe));
        record(name, probe.as_secs_f64());
        return;
    }
    // Batch size targeting ~10 batches within the budget.
    let per_batch = budget.as_nanos() / 10;
    let iters = (per_batch / probe.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut samples: Vec<f64> = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 3 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
        if samples.len() >= 1000 {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    record(name, median);
    eprintln!(
        "  {name}: min {} / median {} / mean {}  ({} batches × {iters} iters)",
        fmt_secs(min),
        fmt_secs(median),
        fmt_secs(mean),
        samples.len(),
    );
}

fn fmt_secs(s: f64) -> String {
    fmt_dur(Duration::from_secs_f64(s))
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a plain
            // wall-clock harness can ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_runs_function() {
        std::env::set_var("KDOM_BENCH_MS", "0");
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("t");
            g.bench_function("inc", |b| {
                runs += 1;
                b.iter(|| 1 + 1)
            });
            g.finish();
        }
        assert!(runs >= 1);
    }

    #[test]
    fn gate_scrapes_the_json_it_writes() {
        let doc = concat!(
            "{\n  \"nproc\": 1,\n  \"targets\": [\n",
            "    {\"name\": \"engine/a/legacy-loop\", \"median_secs\": 0.135995919, ",
            "\"rounds\": 2001, \"rounds_per_sec\": 14713.7},\n",
            "    {\"name\": \"engine/b\", \"mode\": \"wire-exact\", \"median_secs\": 0.5}\n",
            "  ]\n}\n"
        );
        let m = parse_medians(doc);
        assert_eq!(
            m,
            vec![
                ("engine/a/legacy-loop".to_string(), None, 0.135995919),
                ("engine/b".to_string(), Some("wire-exact".to_string()), 0.5),
            ]
        );
    }

    #[test]
    fn histogram_buckets_by_log2_and_quantiles_bound() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(Duration::from_nanos(100)); // bucket 6: [64, 127]
        }
        for _ in 0..10 {
            h.record(Duration::from_nanos(5000)); // bucket 12: [4096, 8191]
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), Duration::from_nanos(128));
        assert_eq!(h.quantile(0.95), Duration::from_nanos(8192));
        let rows = h.rows();
        assert_eq!(rows, vec![(64, 127, 90), (4096, 8191, 10)]);
        assert!(h.summary().contains("100 samples"));
        assert_eq!(Histogram::new().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn extras_land_in_json_rows() {
        record("extra-test/x", 0.25);
        note_extra("extra-test/x", "ff_skipped", 42);
        let r = RESULTS.lock().unwrap();
        let s = r
            .iter()
            .rev()
            .find(|s| s.name == "extra-test/x")
            .expect("sample recorded");
        assert_eq!(s.extras, vec![("ff_skipped".to_string(), 42)]);
    }

    #[test]
    fn durations_format_across_scales() {
        assert!(fmt_dur(Duration::from_nanos(5)).contains("ns"));
        assert!(fmt_dur(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_dur(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_dur(Duration::from_secs(5)).contains("s"));
    }
}
