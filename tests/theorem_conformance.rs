//! One test per numbered claim of the paper, in the paper's order — the
//! machine-checked version of the EXPERIMENTS.md summary table.

use kdom::congest::{congest_budget, EngineConfig, Simulator};
use kdom::core::dist::coloring::cv_schedule;
use kdom::core::dist::diamdom::run_diamdom;
use kdom::core::dist::fragments::{run_simple_mst, schedule_end, FragmentNode};
use kdom::core::fastdom::{fast_dom_g, fast_dom_t, WithinCluster};
use kdom::core::partition::dom_partition;
use kdom::core::verify::{
    check_fastdom_output, check_k_dominating, check_mst_fragments, check_spanning_forest,
    dominating_size_bound,
};
use kdom::graph::generators::Family;
use kdom::graph::mst_ref::is_mst;
use kdom::graph::properties::diameter;
use kdom::graph::NodeId;
use kdom::mst::fastmst::fast_mst;
use kdom::mst::pipeline::run_pipeline;

const SEED: u64 = 1995; // the venue year, why not

/// Lemma 2.1 — for every connected G and k ≥ 1 there is a k-dominating
/// set of size ≤ max(1, ⌊n/(k+1)⌋).
#[test]
fn lemma_2_1_existence() {
    for fam in Family::ALL {
        for k in [1usize, 4, 9] {
            let g = fam.generate(200, SEED);
            let res = fast_dom_g(&g, k);
            assert!(res.dominators().len() <= dominating_size_bound(g.node_count(), k));
            check_k_dominating(&g, res.dominators(), k).unwrap();
        }
    }
}

/// Lemma 2.3 — DiamDOM runs in O(Diam + k) (≤ 5·Diam + 2k + c measured).
#[test]
fn lemma_2_3_diamdom_time() {
    for fam in Family::ALL {
        let g = fam.generate(200, SEED);
        let k = 4;
        let run = run_diamdom(&g, NodeId(0), k);
        let bound = 5 * u64::from(diameter(&g)) + 2 * k as u64 + 12;
        assert!(run.total_rounds() <= bound, "{fam}");
    }
}

/// Lemma 3.3 — BalancedDOM is O(log* n): with 48-bit ids the whole
/// schedule is a constant ≤ cv_schedule(48) + 19 rounds.
#[test]
fn lemma_3_3_balanced_dom_constant() {
    assert!(cv_schedule(48) <= 5);
    // the measured-flatness claim is covered by dist::coloring tests and
    // experiment E3; here we pin the schedule constant itself
    assert_eq!(cv_schedule(48), 4);
}

/// Lemmas 3.5–3.8 — DOMPartition outputs a (k+1, 5k+2) partition.
#[test]
fn lemmas_3_5_to_3_8_partition() {
    for fam in Family::TREES {
        let k = 6;
        let g = fam.generate(300, SEED);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        let res = dom_partition(&g, nodes, &edges, k);
        assert!(res.min_size() > k, "{fam}");
        let cl = kdom::core::fastdom::clusters_to_clustering(g.node_count(), &res.clusters);
        assert!(cl.max_radius(&g) <= 5 * k as u32 + 2, "{fam}");
    }
}

/// Theorem 3.2 — FastDOM_T: size ≤ n/(k+1) on trees.
#[test]
fn theorem_3_2_fastdom_t() {
    for fam in Family::TREES {
        let g = fam.generate(250, SEED);
        let res = fast_dom_t(&g, 5, WithinCluster::OptimalDp);
        check_fastdom_output(&g, &res.clustering, 5).unwrap_or_else(|e| panic!("{fam}: {e}"));
    }
}

/// Lemmas 4.1–4.3 — SimpleMST: a (k+1, n) spanning forest of MST
/// fragments in O(k) measured rounds.
#[test]
fn lemmas_4_1_to_4_3_simple_mst() {
    let g = Family::Grid.generate(400, SEED);
    for k in [3usize, 15] {
        let run = run_simple_mst(&g, k);
        assert!(run.report.rounds <= schedule_end(k) + 2);
        check_mst_fragments(&g, &run.tree_edges).unwrap();
        check_spanning_forest(&g, &run.tree_edges, k + 1).unwrap();
    }
}

/// Theorem 4.4 — FastDOM_G: size ≤ n/(k+1) on general graphs.
#[test]
fn theorem_4_4_fastdom_g() {
    for fam in [Family::Grid, Family::Gnp] {
        let g = fam.generate(300, SEED);
        let res = fast_dom_g(&g, 6);
        check_fastdom_output(&g, &res.clustering, 6).unwrap_or_else(|e| panic!("{fam}: {e}"));
    }
}

/// Lemma 5.3 — the convergecast is fully pipelined: zero stalls, zero
/// order violations, on every family.
#[test]
fn lemma_5_3_full_pipelining() {
    for fam in Family::ALL {
        let g = fam.generate(250, SEED);
        let clusters: Vec<u64> = g.nodes().map(|v| g.id_of(v)).collect();
        let run = run_pipeline(&g, NodeId(0), &clusters, true, false);
        assert_eq!(run.stalls, 0, "{fam}");
        assert_eq!(run.order_violations, 0, "{fam}");
    }
}

/// Lemma 5.5 — Pipeline collects within O(N + Diam) and outputs the
/// cluster-graph MST.
#[test]
fn lemma_5_5_pipeline_time_and_output() {
    let g = Family::Gnp.generate(300, SEED);
    let clusters: Vec<u64> = g.nodes().map(|v| g.id_of(v)).collect();
    let run = run_pipeline(&g, NodeId(0), &clusters, true, false);
    let bound = g.node_count() as u64 + 2 * u64::from(diameter(&g)) + 16;
    assert!(run.collect_rounds <= bound);
    assert_eq!(run.mst_weights.len(), g.node_count() - 1);
}

/// Theorem 5.6 — Fast-MST computes the MST and beats the O(n) baseline
/// on a low-diameter graph.
#[test]
fn theorem_5_6_fast_mst() {
    let g = Family::Gnp.generate(400, SEED);
    let fast = fast_mst(&g);
    assert!(is_mst(&g, &fast.mst_edges));
    assert_eq!(fast.stalls, 0);
    let pd = kdom::mst::baselines::phase_doubling_mst(&g);
    assert!(fast.total_rounds() < pd.rounds);
}

/// The CONGEST discipline (§1.2) — messages carry O(log n) bits. Every
/// message in the repo fits a constant number of 48-bit words; the widest
/// is Fast-MST's pipelined edge descriptor `(id, id, weight)` = 3 words,
/// pinned here via the engine's measured `max_message_bits`.
#[test]
fn congest_budget_bounds_fast_mst_messages() {
    assert_eq!(congest_budget(3), 144);
    let g = Family::Gnp.generate(400, SEED);
    let fast = fast_mst(&g);
    assert_eq!(fast.pipeline_report.max_message_bits, congest_budget(3));

    // debug builds can enforce the budget per send, inside the engine:
    // SimpleMST's widest frame (the depth probe, 80 bits) fits 2 words
    let nodes: Vec<FragmentNode> = g
        .nodes()
        .map(|v| FragmentNode::new(3, g.id_of(v)))
        .collect();
    let mut sim = Simulator::with_config(
        &g,
        nodes,
        EngineConfig::default().with_bit_budget(congest_budget(2)),
    );
    let report = sim.run(10_000).expect("SimpleMST quiesces");
    assert!(report.max_message_bits <= congest_budget(2));
}

/// The per-send budget assert trips in debug builds on the first message
/// wider than the configured budget.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "CONGEST budget exceeded")]
fn congest_budget_assert_trips() {
    let g = Family::Path.generate(8, SEED);
    let nodes: Vec<FragmentNode> = g
        .nodes()
        .map(|v| FragmentNode::new(3, g.id_of(v)))
        .collect();
    let mut sim = Simulator::with_config(&g, nodes, EngineConfig::default().with_bit_budget(16));
    let _ = sim.run(10_000);
}
