//! Review repro: dropped_messages parity at high thread counts with crashes.

use kdom::congest::{EngineConfig, FaultPlan, Message, NodeCtx, Outbox, Port, Protocol, Simulator};
use kdom::graph::generators::{gnp_connected, GenConfig};
use kdom::graph::NodeId;

#[derive(Clone, Debug)]
struct Ping;
kdom::congest::impl_wire_empty!(Ping);
impl Message for Ping {}

/// Every node broadcasts until round `until`, then stops; nodes stay
/// active while they have messages, so the active-set size varies.
struct Chatter {
    until: u64,
    done: bool,
}
impl Protocol for Chatter {
    type Msg = Ping;
    fn round(&mut self, ctx: &NodeCtx<'_>, _inbox: &[(Port, Ping)], out: &mut Outbox<Ping>) {
        // stagger finish times so the active set shrinks gradually
        let stop = self.until + (ctx.id % 7);
        if ctx.round < stop {
            out.broadcast(Ping);
        } else {
            self.done = true;
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

#[test]
fn dropped_messages_parity_high_threads() {
    let g = gnp_connected(&GenConfig::with_seed(2600, 1), 0.004);
    let mut plan = FaultPlan::new(9).drop_prob(0.05).dup_prob(0.05);
    // crashes scattered across node indices and rounds
    for (v, at) in [(2550usize, 2u64), (1280, 3), (700, 4), (2590, 5), (100, 6)] {
        plan = plan.crash(NodeId(v), at);
    }
    let mk = |g: &kdom::graph::Graph| -> Vec<Chatter> {
        (0..g.node_count())
            .map(|_| Chatter {
                until: 12,
                done: false,
            })
            .collect()
    };
    let mut reports = Vec::new();
    for threads in [1usize, 40] {
        let cfg = EngineConfig::default().with_threads(threads);
        let mut sim = Simulator::with_faults_config(&g, mk(&g), &plan, cfg);
        sim.run(10_000).expect("quiesces");
        reports.push(sim.report().clone());
    }
    assert_eq!(
        format!("{:?}", reports[0]),
        format!("{:?}", reports[1]),
        "RunReport diverged between 1 and 40 threads"
    );
}
