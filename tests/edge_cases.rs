//! Edge cases and failure-path behavior across the whole stack.

use kdom::congest::{run_protocol_alpha, SimError};
use kdom::core::dist::bfs::BfsNode;
use kdom::core::dist::diamdom::run_diamdom;
use kdom::core::dist::partition1::run_partition1;
use kdom::core::fastdom::{fast_dom_t, WithinCluster};
use kdom::core::verify::check_fastdom_output;
use kdom::graph::generators::{expanderish, hypercube, torus, GenConfig};
use kdom::graph::generators::{path, star};
use kdom::graph::mst_ref::is_mst;
use kdom::graph::{GraphBuilder, NodeId};
use kdom::mst::fastmst::fast_mst;
use kdom::mst::pipeline::run_pipeline;

#[test]
fn pipeline_on_singleton_graph() {
    let g = GraphBuilder::new(1).build();
    let run = run_pipeline(&g, NodeId(0), &[42], true, false);
    assert!(run.mst_weights.is_empty());
    assert_eq!(run.stalls, 0);
}

#[test]
fn pipeline_on_two_nodes() {
    let mut b = GraphBuilder::new(2);
    b.add_edge(NodeId(0), NodeId(1), 7);
    let g = b.build();
    let run = run_pipeline(&g, NodeId(0), &[1, 2], true, false);
    assert_eq!(run.mst_weights, vec![7]);
}

#[test]
fn alpha_round_limit_is_reported() {
    // a protocol that never finishes must hit the pulse budget
    let g = path(&GenConfig::with_seed(4, 0));
    #[derive(Debug)]
    struct Forever;
    #[derive(Clone, Debug)]
    struct Ping;
    kdom::congest::impl_wire_empty!(Ping);
    impl kdom::congest::Message for Ping {}
    impl kdom::congest::Protocol for Forever {
        type Msg = Ping;
        fn round(
            &mut self,
            _: &kdom::congest::NodeCtx<'_>,
            _: &[(kdom::congest::Port, Ping)],
            out: &mut kdom::congest::Outbox<Ping>,
        ) {
            out.broadcast(Ping);
        }
        fn is_done(&self) -> bool {
            false
        }
    }
    let err =
        run_protocol_alpha(&g, vec![Forever, Forever, Forever, Forever], 1, 2, 20).unwrap_err();
    assert!(matches!(err, SimError::RoundLimitExceeded { .. }));
}

#[test]
fn fast_mst_on_new_topologies() {
    for g in [
        hypercube(6, 1),
        torus(5, 5, 2),
        expanderish(&GenConfig::with_seed(50, 3), 2),
    ] {
        let run = fast_mst(&g);
        assert!(is_mst(&g, &run.mst_edges));
        assert_eq!(run.stalls, 0);
    }
}

#[test]
fn diamdom_on_new_topologies() {
    for g in [hypercube(5, 4), torus(4, 5, 5)] {
        let run = run_diamdom(&g, NodeId(0), 2);
        kdom::core::verify::check_k_dominating(&g, &run.dominators, 2).unwrap();
    }
}

#[test]
fn partition1_star_collapses_once() {
    // a star contracts to one cluster in the first iteration and then
    // idles (lone) for the rest of the schedule
    let g = star(&GenConfig::with_seed(30, 7));
    let (nodes, _) = run_partition1(&g, NodeId(0), 7);
    let first = nodes[0].cluster;
    assert!(nodes.iter().all(|n| n.cluster == first));
    assert_eq!(nodes.iter().filter(|n| n.is_center).count(), 1);
}

#[test]
fn partition1_two_nodes() {
    let mut b = GraphBuilder::new(2);
    b.add_edge(NodeId(0), NodeId(1), 3);
    b.ids(vec![5, 9]);
    let g = b.build();
    let (nodes, _) = run_partition1(&g, NodeId(0), 1);
    assert_eq!(nodes[0].cluster, nodes[1].cluster);
}

#[test]
fn fastdom_t_on_exact_threshold_sizes() {
    // n = k+1 and n = k+2: the partition floor is exercised exactly
    for extra in [1usize, 2] {
        let k = 6;
        let g = path(&GenConfig::with_seed(k + extra, 9));
        let res = fast_dom_t(&g, k, WithinCluster::OptimalDp);
        check_fastdom_output(&g, &res.clustering, k).unwrap();
    }
}

#[test]
fn bfs_under_alpha_on_star_is_fast() {
    let g = star(&GenConfig::with_seed(20, 2));
    let nodes: Vec<BfsNode> = (0..20).map(|v| BfsNode::new(v == 0)).collect();
    let (nodes, report) = run_protocol_alpha(&g, nodes, 3, 2, 1000).unwrap();
    assert!(nodes.iter().all(|n| n.depth.is_some()));
    assert!(report.pulses <= 10);
}

#[test]
fn degenerate_weights_near_u64_max() {
    // huge (but distinct) weights flow through every pipeline intact
    let mut b = GraphBuilder::new(4);
    b.add_edge(NodeId(0), NodeId(1), u64::MAX - 1);
    b.add_edge(NodeId(1), NodeId(2), u64::MAX - 2);
    b.add_edge(NodeId(2), NodeId(3), u64::MAX - 3);
    b.add_edge(NodeId(3), NodeId(0), u64::MAX - 4);
    let g = b.build();
    let run = fast_mst(&g);
    assert!(is_mst(&g, &run.mst_edges));
}
