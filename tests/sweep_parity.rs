//! The issue's acceptance pin: a [`SweepSpec`] of ≥ 8 jobs executed on
//! a pool of 4 workers yields [`RunReport`]s (and outputs, and traces)
//! byte-identical to serial execution, and resubmitting the same sweep
//! completes entirely from the cache — zero engine invocations,
//! identical reports.
//!
//! The engine runs are counted by wrapping the production runner in a
//! counting shim, so "zero invocations" is measured at the exact
//! boundary the cache is supposed to protect.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kdom::congest::{run_serial, Algo, JobPool, JobStatus, RunSpec, Runner, SweepSpec};
use kdom::graph::generators::Family;
use kdom::mst::service;

/// Wraps `inner` so every actual engine invocation bumps `counter`.
fn counting_runner(inner: Runner, counter: Arc<AtomicU64>) -> Runner {
    Arc::new(move |g, spec| {
        counter.fetch_add(1, Ordering::SeqCst);
        inner(g, spec)
    })
}

#[test]
fn pooled_sweep_matches_serial_and_resubmission_is_all_cache() {
    let graph = Arc::new(Family::Grid.generate(81, 17));
    // 3 algorithms × 3 seeds = 9 jobs ≥ 8, with per-job tracing on so
    // the parity claim covers the captured trace streams too
    let sweep = SweepSpec::new(RunSpec::default().with_k(3).with_trace(true))
        .over_algos(&[Algo::SimpleMst, Algo::FastDomG, Algo::Bfs])
        .over_seeds(&[1, 2, 3]);
    let specs = sweep.specs();
    assert!(specs.len() >= 8, "the acceptance pin wants at least 8 jobs");

    // serial reference, one spec at a time on this thread
    let reference: Vec<_> = specs
        .iter()
        .map(|spec| run_serial(&graph, spec, &service::runner()).expect("serial run"))
        .collect();

    let invocations = Arc::new(AtomicU64::new(0));
    let pool = JobPool::new(
        4,
        64 << 20,
        counting_runner(service::runner(), Arc::clone(&invocations)),
    );

    let handles = pool.submit_sweep(&graph, &sweep);
    assert_eq!(handles.len(), specs.len());
    for ((handle, spec), want) in handles.iter().zip(&specs).zip(&reference) {
        assert_eq!(handle.spec(), spec, "handles line up with SweepSpec::specs");
        let got = handle.wait().expect("pooled run");
        assert_eq!(
            got.report, want.report,
            "byte-identical RunReport: {spec:?}"
        );
        assert_eq!(
            got.outputs, want.outputs,
            "byte-identical outputs: {spec:?}"
        );
        assert_eq!(got.trace, want.trace, "byte-identical trace: {spec:?}");
        assert_eq!(handle.status(), JobStatus::Done { from_cache: false });
    }
    assert_eq!(invocations.load(Ordering::SeqCst), specs.len() as u64);

    // the identical sweep again: served entirely from the cache
    let cached = pool.submit_sweep(&graph, &sweep);
    for (handle, want) in cached.iter().zip(&reference) {
        let got = handle.wait().expect("cached run");
        assert_eq!(
            handle.status(),
            JobStatus::Done { from_cache: true },
            "resubmission must not re-run: {:?}",
            handle.spec()
        );
        assert_eq!(got.report, want.report, "cached report identical");
        assert_eq!(got.outputs, want.outputs, "cached outputs identical");
        assert_eq!(got.trace, want.trace, "cached trace identical");
    }
    assert_eq!(
        invocations.load(Ordering::SeqCst),
        specs.len() as u64,
        "the resubmitted sweep must invoke the engine zero times"
    );
    let stats = pool.stats();
    assert_eq!(stats.engine_runs, specs.len() as u64);
    assert_eq!(stats.cache.hits, specs.len() as u64);
    assert_eq!(stats.submitted, 2 * specs.len() as u64);
}
