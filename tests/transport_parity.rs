//! Socket-transport parity: a Fast-MST fragment stage executed across
//! separate OS processes must be **byte-identical** to the in-process
//! engine — same [`RunReport`], same per-send JSONL trace, same
//! harvested outputs — for both 2-worker and 4-worker fleets. Killing a
//! worker mid-run must surface as a typed [`SimError::PeerLost`] within
//! the heartbeat deadline, and a worker whose graph disagrees must be
//! rejected in the handshake.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use kdom::congest::transport::{coordinate, CoordListener, CoordOpts, Endpoint};
use kdom::congest::{trace, EngineConfig, MemorySink, RunReport, SimError, Simulator};
use kdom::core::dist::fragments::{schedule_end, FragmentNode};
use kdom::graph::generators::Family;
use kdom::graph::Graph;
use kdom::mst::fastmst::default_k;

const GRAPH_SPEC: &str = "grid:2500:42";
const SMALL_SPEC: &str = "grid:100:7";

fn graph_of(spec: &str) -> Graph {
    let mut parts = spec.split(':');
    let family = match parts.next().unwrap() {
        "grid" => Family::Grid,
        other => panic!("unexpected family {other}"),
    };
    let n: usize = parts.next().unwrap().parse().unwrap();
    let seed: u64 = parts.next().unwrap().parse().unwrap();
    family.generate(n, seed)
}

fn harvest(node: &FragmentNode) -> u64 {
    node.parent.map_or(0, |p| p.0 as u64 + 1)
}

/// The in-process reference: `Simulator` with a memory trace, exactly
/// the engine configuration [`coordinate`] replicates.
fn reference_run(g: &Graph, k: usize, max_rounds: u64) -> (RunReport, Vec<u64>, String) {
    let nodes: Vec<FragmentNode> = (0..g.node_count())
        .map(|v| FragmentNode::new(k, g.id_of(kdom::graph::NodeId(v))))
        .collect();
    let mut sim = Simulator::with_config(g, nodes, EngineConfig::default());
    let sink = MemorySink::new();
    sim.set_trace(Box::new(sink.clone()));
    let report = sim.run(max_rounds).expect("in-process run");
    let rows: Vec<u64> = sim.nodes().iter().map(harvest).collect();
    (report, rows, sink.to_jsonl())
}

fn spawn_worker(ep: &Endpoint, shard: usize, shards: usize, spec: &str, extra: &[&str]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_kdom-shard"));
    cmd.args([
        "worker",
        "--connect",
        &ep.to_string(),
        "--shard",
        &shard.to_string(),
        "--shards",
        &shards.to_string(),
        "--graph",
        spec,
        "--proto",
    ])
    .arg(format!(
        "simple-mst:{}",
        default_k(graph_of(spec).node_count())
    ))
    .args(extra)
    .stdin(Stdio::null())
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    cmd.spawn().expect("spawn kdom-shard worker")
}

fn reap(mut children: Vec<Child>) {
    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// Runs a distributed fleet and returns its outcome plus the trace.
fn distributed_run(
    spec: &str,
    shards: usize,
    max_rounds: u64,
    timeout: Duration,
    extra_for_shard0: &[&str],
) -> (
    Result<kdom::congest::transport::DistOutcome, SimError>,
    String,
) {
    let g = graph_of(spec);
    let listener = CoordListener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).expect("bind");
    let ep = listener.local_endpoint().expect("local endpoint");
    let children: Vec<Child> = (0..shards)
        .map(|s| {
            let extra = if s == 0 { extra_for_shard0 } else { &[] };
            spawn_worker(&ep, s, shards, spec, extra)
        })
        .collect();
    let sink = MemorySink::new();
    let opts = CoordOpts {
        shards,
        config: EngineConfig::default(),
        plan: None,
        max_rounds,
        timeout,
    };
    let result = coordinate(listener, &g, &opts, Some(Box::new(sink.clone())));
    reap(children);
    (result, sink.to_jsonl())
}

fn assert_parity(shards: usize) {
    let g = graph_of(GRAPH_SPEC);
    let k = default_k(g.node_count());
    let max_rounds = schedule_end(k) + 8;
    let (want_report, want_rows, want_trace) = reference_run(&g, k, max_rounds);
    let (result, got_trace) =
        distributed_run(GRAPH_SPEC, shards, max_rounds, Duration::from_secs(60), &[]);
    let outcome = result.unwrap_or_else(|e| panic!("{shards}-worker run failed: {e}"));
    assert_eq!(
        outcome.report, want_report,
        "{shards}-worker RunReport diverged from the in-process engine"
    );
    assert_eq!(
        outcome.outputs, want_rows,
        "{shards}-worker harvested parents diverged"
    );
    if got_trace != want_trace {
        // keep both traces on disk for the CI artifact upload before
        // failing — a byte diff of two full event streams is unreadable
        // in a panic message
        let dir = std::path::Path::new("target/transport-parity");
        std::fs::create_dir_all(dir).expect("create trace dump dir");
        std::fs::write(
            dir.join(format!("{shards}proc-inprocess.jsonl")),
            &want_trace,
        )
        .expect("dump in-process trace");
        std::fs::write(dir.join(format!("{shards}proc-socket.jsonl")), &got_trace)
            .expect("dump socket trace");
        let line = want_trace
            .lines()
            .zip(got_trace.lines())
            .position(|(a, b)| a != b)
            .map_or("the tail".to_string(), |l| format!("line {}", l + 1));
        panic!(
            "{shards}-worker JSONL trace diverged from the in-process engine at {line}; \
             both traces written to {}",
            dir.display()
        );
    }
    let summary = trace::validate_str(&got_trace, None)
        .unwrap_or_else(|e| panic!("{shards}-worker trace failed validation: {e}"));
    assert_eq!(summary.runs.len(), 1);
    assert_eq!(summary.runs[0].recorded, want_report);
    assert_eq!(summary.runs[0].derived, want_report);
}

#[test]
fn two_process_run_is_byte_identical_to_in_process() {
    assert_parity(2);
}

#[test]
fn four_process_run_is_byte_identical_to_in_process() {
    assert_parity(4);
}

#[test]
fn killing_a_worker_mid_run_is_a_typed_peer_lost() {
    let timeout = Duration::from_millis(2000);
    let started = Instant::now();
    let (result, _) = distributed_run(SMALL_SPEC, 2, 10_000, timeout, &["--die-at-round", "5"]);
    let err = result.expect_err("a dead worker must fail the run");
    let SimError::PeerLost { peer, round, .. } = &err else {
        panic!("expected PeerLost, got {err}");
    };
    assert_eq!(*peer, 0, "the killed shard should be named");
    assert!(*round >= 5, "death was scheduled at round 5, got {round}");
    // detected within the read deadline (plus slack for process startup)
    assert!(
        started.elapsed() < timeout + Duration::from_secs(20),
        "PeerLost took {:?}",
        started.elapsed()
    );
}

#[test]
fn graph_fingerprint_mismatch_is_rejected_in_the_handshake() {
    let g = graph_of(SMALL_SPEC);
    let listener = CoordListener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).expect("bind");
    let ep = listener.local_endpoint().expect("local endpoint");
    // worker built from a different seed: same node count, different weights
    let children = vec![
        spawn_worker(&ep, 0, 2, "grid:100:8", &[]),
        spawn_worker(&ep, 1, 2, SMALL_SPEC, &[]),
    ];
    let opts = CoordOpts {
        shards: 2,
        config: EngineConfig::default(),
        plan: None,
        max_rounds: 10_000,
        timeout: Duration::from_secs(10),
    };
    let result = coordinate(listener, &g, &opts, None);
    reap(children);
    let err = result.expect_err("a mismatched graph must be rejected");
    let SimError::PeerLost { round, detail, .. } = &err else {
        panic!("expected PeerLost, got {err}");
    };
    assert_eq!(*round, 0, "rejection happens in the handshake");
    assert!(
        detail.contains("fingerprint"),
        "detail should name the fingerprint check: {detail}"
    );
}
