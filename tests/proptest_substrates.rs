//! Property-based tests for the substrates: graph generators, sequential
//! MST references, the DSU, the simulator's BFS building block, and the
//! coloring/MIS machinery.

use proptest::prelude::*;

use kdom::core::coloring::{forest_mis, is_mis, is_proper_coloring, six_color_forest};
use kdom::core::dist::bfs::run_bfs;
use kdom::core::logstar::{ceil_log2, log_star};
use kdom::graph::generators::{gnp_connected, random_connected, random_tree, GenConfig};
use kdom::graph::mst_ref::{is_mst, kruskal, prim};
use kdom::graph::properties::{bfs_distances, diameter, is_connected, is_tree, radius_and_center};
use kdom::graph::{Graph, NodeId, RootedTree};

fn any_graph() -> impl Strategy<Value = Graph> {
    (3usize..60, any::<u64>(), 0.05f64..0.4)
        .prop_map(|(n, seed, p)| gnp_connected(&GenConfig::with_seed(n, seed), p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generators uphold the paper's standing assumptions.
    #[test]
    fn generators_invariants(g in any_graph()) {
        prop_assert!(g.has_distinct_weights());
        prop_assert!(g.has_distinct_ids());
        prop_assert!(is_connected(&g));
    }

    /// Random trees are trees; radius/diameter relate as they must.
    #[test]
    fn tree_metrics(n in 1usize..100, seed in any::<u64>()) {
        let g = random_tree(&GenConfig::with_seed(n, seed));
        prop_assert!(is_tree(&g));
        let d = diameter(&g);
        let (r, _) = radius_and_center(&g);
        prop_assert!(r <= d && d <= 2 * r + 1);
    }

    /// `random_connected` delivers the exact requested edge count.
    #[test]
    fn random_connected_edges(n in 2usize..40, seed in any::<u64>(), extra in 0usize..60) {
        let max_m = n * (n - 1) / 2;
        let m = (n - 1 + extra).min(max_m);
        let g = random_connected(&GenConfig::with_seed(n, seed), m);
        prop_assert_eq!(g.edge_count(), m);
        prop_assert!(is_connected(&g));
    }

    /// Kruskal and Prim agree on the unique MST.
    #[test]
    fn kruskal_eq_prim(g in any_graph()) {
        let mut a = kruskal(&g);
        let mut b = prim(&g);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(&a, &b);
        prop_assert!(is_mst(&g, &a));
    }

    /// The distributed BFS matches the sequential distances exactly.
    #[test]
    fn distributed_bfs_matches(g in any_graph(), root_raw in any::<usize>()) {
        let root = NodeId(root_raw % g.node_count());
        let (nodes, report) = run_bfs(&g, root);
        let want = bfs_distances(&g, root);
        for v in 0..g.node_count() {
            prop_assert_eq!(nodes[v].depth, Some(want[v]));
        }
        // one message per direction of each tree/cross edge at most twice
        prop_assert!(report.messages <= 2 * 2 * g.edge_count() as u64);
    }

    /// Cole–Vishkin gives a proper < 6 coloring and a valid MIS on any
    /// random tree orientation.
    #[test]
    fn coloring_and_mis(n in 2usize..150, seed in any::<u64>()) {
        let g = random_tree(&GenConfig::with_seed(n, seed));
        let t = RootedTree::from_graph(&g, NodeId(0));
        let parent: Vec<Option<usize>> =
            (0..n).map(|v| t.parent(NodeId(v)).map(|p| p.0)).collect();
        let ids: Vec<u64> = (0..n).map(|v| g.id_of(NodeId(v))).collect();
        let coloring = six_color_forest(&parent, &ids);
        prop_assert!(coloring.colors.iter().all(|&c| c < 6));
        prop_assert!(is_proper_coloring(&parent, &coloring.colors));
        let (mis, iters) = forest_mis(&parent, &ids);
        prop_assert!(is_mis(&parent, &mis));
        prop_assert!(iters <= 7);
    }

    /// log* and ceil_log2 sanity relations.
    #[test]
    fn log_functions(n in 1u64..1_000_000) {
        prop_assert!(log_star(n) <= 5);
        let c = ceil_log2(n);
        if n > 1 {
            prop_assert!(1u64 << (c - 1) < n);
        }
        prop_assert!(u128::from(n) <= 1u128 << c);
    }
}
