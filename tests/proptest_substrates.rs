//! Property-based tests for the substrates: graph generators, sequential
//! MST references, the DSU, the simulator's BFS building block, and the
//! coloring/MIS machinery. (Seeded-loop style.)

use kdom::core::coloring::{forest_mis, is_mis, is_proper_coloring, six_color_forest};
use kdom::core::dist::bfs::run_bfs;
use kdom::core::logstar::{ceil_log2, log_star};
use kdom::graph::generators::{gnp_connected, random_connected, random_tree, GenConfig};
use kdom::graph::mst_ref::{is_mst, kruskal, prim};
use kdom::graph::properties::{bfs_distances, diameter, is_connected, is_tree, radius_and_center};
use kdom::graph::{Graph, NodeId, RootedTree};
use kdom_rng::StdRng;

fn any_graph(rng: &mut StdRng) -> Graph {
    let n = rng.random_range(3usize..60);
    let seed = rng.next_u64();
    let p = 0.05 + rng.random_unit() * 0.35;
    gnp_connected(&GenConfig::with_seed(n, seed), p)
}

/// Generators uphold the paper's standing assumptions.
#[test]
fn generators_invariants() {
    let mut rng = StdRng::seed_from_u64(0x5B_0001);
    for case in 0..64 {
        let g = any_graph(&mut rng);
        assert!(g.has_distinct_weights(), "case {case}");
        assert!(g.has_distinct_ids(), "case {case}");
        assert!(is_connected(&g), "case {case}");
    }
}

/// Random trees are trees; radius/diameter relate as they must.
#[test]
fn tree_metrics() {
    let mut rng = StdRng::seed_from_u64(0x5B_0002);
    for case in 0..64 {
        let n = rng.random_range(1usize..100);
        let g = random_tree(&GenConfig::with_seed(n, rng.next_u64()));
        assert!(is_tree(&g), "case {case}");
        let d = diameter(&g);
        let (r, _) = radius_and_center(&g);
        assert!(r <= d && d <= 2 * r + 1, "case {case}");
    }
}

/// `random_connected` delivers the exact requested edge count.
#[test]
fn random_connected_edges() {
    let mut rng = StdRng::seed_from_u64(0x5B_0003);
    for case in 0..64 {
        let n = rng.random_range(2usize..40);
        let seed = rng.next_u64();
        let extra = rng.random_range(0usize..60);
        let max_m = n * (n - 1) / 2;
        let m = (n - 1 + extra).min(max_m);
        let g = random_connected(&GenConfig::with_seed(n, seed), m);
        assert_eq!(g.edge_count(), m, "case {case}");
        assert!(is_connected(&g), "case {case}");
    }
}

/// Kruskal and Prim agree on the unique MST.
#[test]
fn kruskal_eq_prim() {
    let mut rng = StdRng::seed_from_u64(0x5B_0004);
    for case in 0..64 {
        let g = any_graph(&mut rng);
        let mut a = kruskal(&g);
        let mut b = prim(&g);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "case {case}");
        assert!(is_mst(&g, &a), "case {case}");
    }
}

/// The distributed BFS matches the sequential distances exactly.
#[test]
fn distributed_bfs_matches() {
    let mut rng = StdRng::seed_from_u64(0x5B_0005);
    for case in 0..64 {
        let g = any_graph(&mut rng);
        let root = NodeId(rng.random_range(0usize..g.node_count()));
        let (nodes, report) = run_bfs(&g, root);
        let want = bfs_distances(&g, root);
        for v in 0..g.node_count() {
            assert_eq!(nodes[v].depth, Some(want[v]), "case {case} node {v}");
        }
        // one message per direction of each tree/cross edge at most twice
        assert!(
            report.messages <= 2 * 2 * g.edge_count() as u64,
            "case {case}"
        );
    }
}

/// Cole–Vishkin gives a proper < 6 coloring and a valid MIS on any
/// random tree orientation.
#[test]
fn coloring_and_mis() {
    let mut rng = StdRng::seed_from_u64(0x5B_0006);
    for case in 0..64 {
        let n = rng.random_range(2usize..150);
        let g = random_tree(&GenConfig::with_seed(n, rng.next_u64()));
        let t = RootedTree::from_graph(&g, NodeId(0));
        let parent: Vec<Option<usize>> = (0..n).map(|v| t.parent(NodeId(v)).map(|p| p.0)).collect();
        let ids: Vec<u64> = (0..n).map(|v| g.id_of(NodeId(v))).collect();
        let coloring = six_color_forest(&parent, &ids);
        assert!(coloring.colors.iter().all(|&c| c < 6), "case {case}");
        assert!(is_proper_coloring(&parent, &coloring.colors), "case {case}");
        let (mis, iters) = forest_mis(&parent, &ids);
        assert!(is_mis(&parent, &mis), "case {case}");
        assert!(iters <= 7, "case {case}");
    }
}

/// log* and ceil_log2 sanity relations.
#[test]
fn log_functions() {
    let mut rng = StdRng::seed_from_u64(0x5B_0007);
    for _ in 0..256 {
        let n = rng.random_range(1u64..1_000_000);
        assert!(log_star(n) <= 5);
        let c = ceil_log2(n);
        if n > 1 {
            assert!(1u64 << (c - 1) < n);
        }
        assert!(u128::from(n) <= 1u128 << c);
    }
}
