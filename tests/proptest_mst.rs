//! Property-based tests for the MST stack: the distributed algorithms
//! must reproduce the unique MST on arbitrary random inputs, the
//! pipelining invariants must hold, and the distributed `SimpleMST` must
//! agree exactly with its sequential reference.

use proptest::prelude::*;

use kdom::core::dist::fragments::run_simple_mst;
use kdom::core::fragments::simple_mst_forest;
use kdom::core::verify::{check_mst_fragments, check_spanning_forest};
use kdom::graph::generators::{gnp_connected, random_tree, GenConfig};
use kdom::graph::mst_ref::{is_mst, kruskal};
use kdom::graph::{Graph, NodeId};
use kdom::mst::fastmst::fast_mst_with_k;
use kdom::mst::pipeline::run_pipeline;

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (4usize..70, any::<u64>(), 0.03f64..0.35)
        .prop_map(|(n, seed, p)| gnp_connected(&GenConfig::with_seed(n, seed), p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 5.6 correctness: Fast-MST returns the unique MST for any
    /// k, with a stall-free pipeline.
    #[test]
    fn fast_mst_always_correct(g in graph_strategy(), k in 1usize..12) {
        let run = fast_mst_with_k(&g, k);
        prop_assert!(is_mst(&g, &run.mst_edges));
        prop_assert_eq!(run.stalls, 0);
        prop_assert_eq!(run.mst_edges.len(), g.node_count() - 1);
    }

    /// Lemma 5.3: the pipeline never stalls and never violates the
    /// nondecreasing-upcast order, on any input and clustering.
    #[test]
    fn pipeline_invariants(g in graph_strategy(), clusters in 1u64..6) {
        let cl: Vec<u64> = g.nodes().map(|v| g.id_of(v) % clusters).collect();
        let run = run_pipeline(&g, NodeId(0), &cl, true, false);
        prop_assert_eq!(run.stalls, 0);
        prop_assert_eq!(run.order_violations, 0);
    }

    /// Lemma 5.5 output: with singleton clusters the pipeline alone
    /// reproduces the unique MST.
    #[test]
    fn pipeline_computes_quotient_mst(g in graph_strategy()) {
        let singles: Vec<u64> = g.nodes().map(|v| g.id_of(v)).collect();
        let run = run_pipeline(&g, NodeId(0), &singles, true, false);
        let mut got = run.mst_weights.clone();
        got.sort_unstable();
        let mut want: Vec<u64> = kruskal(&g).iter().map(|&e| g.edge(e).weight).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Lemma 4.2/4.3: SimpleMST (distributed) equals the sequential
    /// reference edge-for-edge and root-for-root.
    #[test]
    fn simple_mst_dist_eq_seq(g in graph_strategy(), k in 1usize..10) {
        let dist = run_simple_mst(&g, k);
        let seq = simple_mst_forest(&g, k);
        let mut de = dist.tree_edges.clone();
        de.sort_unstable();
        let mut se = seq.tree_edges.clone();
        se.sort_unstable();
        prop_assert_eq!(de, se);
        let mut dr = dist.roots.clone();
        dr.sort_unstable();
        let mut sr = seq.roots.clone();
        sr.sort_unstable();
        prop_assert_eq!(dr, sr);
    }

    /// SimpleMST outputs a (min(k+1, n), ·) spanning forest of MST edges.
    #[test]
    fn simple_mst_forest_properties(g in graph_strategy(), k in 1usize..10) {
        let fr = simple_mst_forest(&g, k);
        prop_assert!(check_mst_fragments(&g, &fr.tree_edges).is_ok());
        let sigma = (k + 1).min(g.node_count());
        prop_assert!(check_spanning_forest(&g, &fr.tree_edges, sigma).is_ok());
    }

    /// Trees are their own MST through the whole stack.
    #[test]
    fn tree_identity(n in 2usize..80, seed in any::<u64>()) {
        let g = random_tree(&GenConfig::with_seed(n, seed));
        let run = fast_mst_with_k(&g, 3);
        prop_assert_eq!(run.mst_edges.len(), n - 1);
        prop_assert!(is_mst(&g, &run.mst_edges));
    }
}
