//! Property-based tests for the MST stack: the distributed algorithms
//! must reproduce the unique MST on arbitrary random inputs, the
//! pipelining invariants must hold, and the distributed `SimpleMST` must
//! agree exactly with its sequential reference. (Seeded-loop style.)

use kdom::core::dist::fragments::run_simple_mst;
use kdom::core::fragments::simple_mst_forest;
use kdom::core::verify::{check_mst_fragments, check_spanning_forest};
use kdom::graph::generators::{gnp_connected, random_tree, GenConfig};
use kdom::graph::mst_ref::{is_mst, kruskal};
use kdom::graph::{Graph, NodeId};
use kdom::mst::fastmst::fast_mst_with_k;
use kdom::mst::pipeline::run_pipeline;
use kdom_rng::StdRng;

fn random_graph(rng: &mut StdRng) -> Graph {
    let n = rng.random_range(4usize..70);
    let seed = rng.next_u64();
    let p = 0.03 + rng.random_unit() * 0.32;
    gnp_connected(&GenConfig::with_seed(n, seed), p)
}

/// Theorem 5.6 correctness: Fast-MST returns the unique MST for any k,
/// with a stall-free pipeline.
#[test]
fn fast_mst_always_correct() {
    let mut rng = StdRng::seed_from_u64(0x3157_0001);
    for case in 0..48 {
        let g = random_graph(&mut rng);
        let k = rng.random_range(1usize..12);
        let run = fast_mst_with_k(&g, k);
        assert!(is_mst(&g, &run.mst_edges), "case {case}");
        assert_eq!(run.stalls, 0, "case {case}");
        assert_eq!(run.mst_edges.len(), g.node_count() - 1, "case {case}");
    }
}

/// Lemma 5.3: the pipeline never stalls and never violates the
/// nondecreasing-upcast order, on any input and clustering.
#[test]
fn pipeline_invariants() {
    let mut rng = StdRng::seed_from_u64(0x3157_0002);
    for case in 0..48 {
        let g = random_graph(&mut rng);
        let clusters = rng.random_range(1u64..6);
        let cl: Vec<u64> = g.nodes().map(|v| g.id_of(v) % clusters).collect();
        let run = run_pipeline(&g, NodeId(0), &cl, true, false);
        assert_eq!(run.stalls, 0, "case {case}");
        assert_eq!(run.order_violations, 0, "case {case}");
    }
}

/// Lemma 5.5 output: with singleton clusters the pipeline alone
/// reproduces the unique MST.
#[test]
fn pipeline_computes_quotient_mst() {
    let mut rng = StdRng::seed_from_u64(0x3157_0003);
    for case in 0..48 {
        let g = random_graph(&mut rng);
        let singles: Vec<u64> = g.nodes().map(|v| g.id_of(v)).collect();
        let run = run_pipeline(&g, NodeId(0), &singles, true, false);
        let mut got = run.mst_weights.clone();
        got.sort_unstable();
        let mut want: Vec<u64> = kruskal(&g).iter().map(|&e| g.edge(e).weight).collect();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

/// Lemma 4.2/4.3: SimpleMST (distributed) equals the sequential
/// reference edge-for-edge and root-for-root.
#[test]
fn simple_mst_dist_eq_seq() {
    let mut rng = StdRng::seed_from_u64(0x3157_0004);
    for case in 0..48 {
        let g = random_graph(&mut rng);
        let k = rng.random_range(1usize..10);
        let dist = run_simple_mst(&g, k);
        let seq = simple_mst_forest(&g, k);
        let mut de = dist.tree_edges.clone();
        de.sort_unstable();
        let mut se = seq.tree_edges.clone();
        se.sort_unstable();
        assert_eq!(de, se, "case {case}");
        let mut dr = dist.roots.clone();
        dr.sort_unstable();
        let mut sr = seq.roots.clone();
        sr.sort_unstable();
        assert_eq!(dr, sr, "case {case}");
    }
}

/// SimpleMST outputs a (min(k+1, n), ·) spanning forest of MST edges.
#[test]
fn simple_mst_forest_properties() {
    let mut rng = StdRng::seed_from_u64(0x3157_0005);
    for case in 0..48 {
        let g = random_graph(&mut rng);
        let k = rng.random_range(1usize..10);
        let fr = simple_mst_forest(&g, k);
        assert!(
            check_mst_fragments(&g, &fr.tree_edges).is_ok(),
            "case {case}"
        );
        let sigma = (k + 1).min(g.node_count());
        assert!(
            check_spanning_forest(&g, &fr.tree_edges, sigma).is_ok(),
            "case {case}"
        );
    }
}

/// Trees are their own MST through the whole stack.
#[test]
fn tree_identity() {
    let mut rng = StdRng::seed_from_u64(0x3157_0006);
    for case in 0..48 {
        let n = rng.random_range(2usize..80);
        let g = random_tree(&GenConfig::with_seed(n, rng.next_u64()));
        let run = fast_mst_with_k(&g, 3);
        assert_eq!(run.mst_edges.len(), n - 1, "case {case}");
        assert!(is_mst(&g, &run.mst_edges), "case {case}");
    }
}
