//! End-to-end trace validation: every execution mode's event stream must
//! re-derive the `RunReport` the engine recorded, and the full Fast-MST
//! composition must demonstrably respect the CONGEST budget.
//!
//! The in-memory tests drive sinks through `set_trace`, but the engine
//! constructors also consult `KDOM_TRACE` — so **every** test here holds
//! the binary-wide lock, and only the Fast-MST test (which exercises the
//! environment path on purpose) mutates the variable while holding it.
//! Its JSONL file is kept under `target/trace/` on failure so CI can
//! upload it as an artifact.

use std::sync::Mutex;

use kdom::congest::trace::{validate_file, validate_str};
use kdom::congest::{
    congest_budget, AlphaSimulator, EngineConfig, FaultPlan, MemorySink, ReliableConfig, RunReport,
    Simulator,
};
use kdom::core::dist::bfs::BfsNode;
use kdom::graph::generators::{gnp_connected, Family, GenConfig};
use kdom::graph::{Graph, NodeId};
use kdom::mst::fastmst::fast_mst;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // a poisoned lock just means another test failed; the env var is
    // still consistent because each test clears it before unwinding past
    // the guard
    ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn bfs_nodes(g: &Graph) -> Vec<BfsNode> {
    (0..g.node_count()).map(|v| BfsNode::new(v == 0)).collect()
}

/// Synchronous run with injected duplication, delay, and a crash: the
/// validator must re-derive all eight report fields exactly from the
/// per-send events.
#[test]
fn sync_trace_rederives_recorded_report() {
    let _g = lock();
    let g = gnp_connected(&GenConfig::with_seed(130, 4), 0.06);
    let plan = FaultPlan::new(0xACE)
        .dup_prob(0.1)
        .max_extra_delay(2)
        .crash(NodeId(7), 3);
    let mem = MemorySink::new();
    let mut sim = Simulator::with_faults_config(&g, bfs_nodes(&g), &plan, EngineConfig::default());
    sim.set_trace(Box::new(mem.clone()));
    let report = sim.run(50_000).expect("faulty BFS quiesces");

    let summary = validate_str(&mem.to_jsonl(), None)
        .unwrap_or_else(|e| panic!("sync trace failed validation: {e}"));
    assert_eq!(summary.runs.len(), 1);
    let run = &summary.runs[0];
    assert_eq!(run.mode, "sync");
    assert_eq!(run.recorded, report, "run_end disagrees with the report");
    assert_eq!(run.derived, report, "derivation disagrees with the report");
    assert!(report.messages > 0 && report.duplicated_messages > 0);
    assert!(
        summary.ff_jumps > 0 || summary.ff_skipped == 0,
        "skip accounting without a jump"
    );
}

/// Plain synchronizer α (no faults, no ARQ): pulses and payload
/// deliveries must re-derive the projected report, with the bit-level
/// fields zero by design.
#[test]
fn alpha_trace_rederives_projected_report() {
    let _g = lock();
    let g = gnp_connected(&GenConfig::with_seed(90, 3), 0.07);
    let mem = MemorySink::new();
    let mut sim = AlphaSimulator::new(&g, bfs_nodes(&g), 13, 3);
    sim.set_trace(Box::new(mem.clone()));
    let alpha_report = sim.run(500_000).expect("α BFS quiesces");
    let projected = RunReport::from(alpha_report);

    let summary = validate_str(&mem.to_jsonl(), None)
        .unwrap_or_else(|e| panic!("α trace failed validation: {e}"));
    assert_eq!(summary.runs.len(), 1);
    let run = &summary.runs[0];
    assert_eq!(run.mode, "alpha");
    assert_eq!(run.recorded, projected);
    assert!(projected.messages > 0);
    assert_eq!(projected.total_bits, 0, "α must project bit fields to zero");
}

/// Reliable-α under 20% loss: the ARQ layer's accounting must be
/// internally consistent — the validator re-derives retransmissions and
/// drops from the event stream, and exactly-once delivery means the
/// payload count equals the synchronous message count despite the loss.
#[test]
fn reliable_alpha_lossy_trace_is_consistent_with_sync() {
    let _g = lock();
    let g = gnp_connected(&GenConfig::with_seed(110, 6), 0.06);
    let plan = FaultPlan::new(77).drop_prob(0.2);

    let mut sync = Simulator::new(&g, bfs_nodes(&g));
    let sync_report = sync.run(10_000).expect("sync BFS quiesces");

    let mem = MemorySink::new();
    let mut sim = AlphaSimulator::with_faults(&g, bfs_nodes(&g), 7, 3, &plan)
        .reliable(ReliableConfig::for_delays(3, plan.max_extra_delay));
    sim.set_trace(Box::new(mem.clone()));
    let alpha_report = sim.run(500_000).expect("reliable-α BFS quiesces");
    let projected = RunReport::from(alpha_report);

    let summary = validate_str(&mem.to_jsonl(), None)
        .unwrap_or_else(|e| panic!("reliable-α trace failed validation: {e}"));
    assert_eq!(summary.runs.len(), 1);
    let run = &summary.runs[0];
    assert_eq!(run.mode, "reliable-alpha");
    assert_eq!(run.recorded, projected);
    assert!(
        projected.retransmissions > 0,
        "20% loss must force retransmissions: {projected:?}"
    );
    assert!(projected.dropped_messages > 0);
    assert_eq!(
        projected.messages, sync_report.messages,
        "exactly-once delivery must recover the synchronous payload count"
    );
}

/// The full Fast-MST composition, traced through the `KDOM_TRACE`
/// environment path: the validator must confirm the CONGEST budget (one
/// message per edge-direction per round, every message within the
/// 3-word/144-bit pipeline maximum), the per-phase breakdown must cover
/// `SimpleMST` / `DOMPartition` (charged) / `BFS` / `Pipeline`, and the
/// absorbed total must reproduce `FastMstRun::total_rounds`.
#[test]
fn fast_mst_trace_confirms_congest_budget_and_phases() {
    let _g = lock();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/trace");
    std::fs::create_dir_all(&dir).expect("create target/trace");
    let path = dir.join("fast_mst_grid400.jsonl");
    let _ = std::fs::remove_file(&path);

    std::env::set_var("KDOM_TRACE", &path);
    let g = Family::Grid.generate(400, 11);
    let run = fast_mst(&g);
    std::env::remove_var("KDOM_TRACE");

    let summary = validate_file(&path, Some(congest_budget(3))).unwrap_or_else(|e| {
        panic!(
            "Fast-MST trace failed validation (kept at {}): {e}",
            path.display()
        )
    });

    assert_eq!(
        summary.runs.len(),
        3,
        "SimpleMST, BFS and Pipeline are measured runs"
    );
    for label in ["SimpleMST", "DOMPartition", "BFS", "Pipeline"] {
        let phase = summary
            .phase(label)
            .unwrap_or_else(|| panic!("phase {label} missing from the breakdown"));
        assert!(phase.rounds > 0, "phase {label} recorded no rounds");
    }
    assert_eq!(
        summary.phase("DOMPartition").unwrap().messages,
        0,
        "the partition stage is charged, not simulated"
    );
    assert_eq!(
        summary.total.rounds,
        run.total_rounds(),
        "trace total disagrees with the composition's own accounting"
    );

    // the phase breakdowns partition the total, field by field
    let mut sum = RunReport::default();
    for (_, r) in &summary.phases {
        sum.absorb(r);
    }
    assert_eq!(sum, summary.total, "phases do not partition the total");

    // wire-exact leg: the same composition with every message round-tripped
    // through its bit encoding must emit the byte-identical event stream —
    // same budget conformance, same reports, same fault-free determinism
    let exact_path = dir.join("fast_mst_grid400_wire_exact.jsonl");
    let _ = std::fs::remove_file(&exact_path);
    std::env::set_var("KDOM_TRACE", &exact_path);
    std::env::set_var("KDOM_WIRE", "exact");
    let exact_run = fast_mst(&g);
    std::env::remove_var("KDOM_WIRE");
    std::env::remove_var("KDOM_TRACE");

    validate_file(&exact_path, Some(congest_budget(3))).unwrap_or_else(|e| {
        panic!(
            "wire-exact Fast-MST trace failed validation (kept at {}): {e}",
            exact_path.display()
        )
    });
    assert_eq!(
        format!("{run:?}"),
        format!("{exact_run:?}"),
        "wire-exact Fast-MST diverged from the in-memory run"
    );
    assert_eq!(
        std::fs::read_to_string(&path).expect("default trace readable"),
        std::fs::read_to_string(&exact_path).expect("wire-exact trace readable"),
        "wire-exact trace is not byte-identical to the in-memory trace"
    );

    // validated: safe to reclaim the artifacts
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&exact_path);
}
