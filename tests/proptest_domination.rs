//! Property-based tests for the k-dominating-set algorithms: random
//! trees/graphs and k values, with every paper invariant as a property.

use proptest::prelude::*;

use kdom::core::fastdom::{fast_dom_g, fast_dom_t, WithinCluster};
use kdom::core::partition::{dom_partition, dom_partition_1, dom_partition_2};
use kdom::core::treedp::min_k_dominating_tree;
use kdom::core::verify::{
    check_clusters, check_dominating_size, check_fastdom_output, check_k_dominating,
};
use kdom::graph::generators::{gnp_connected, random_tree, GenConfig};
use kdom::graph::{Graph, NodeId, RootedTree};

fn tree_strategy() -> impl Strategy<Value = (Graph, usize)> {
    (2usize..120, any::<u64>(), 1usize..9).prop_map(|(n, seed, k)| {
        (random_tree(&GenConfig::with_seed(n, seed)), k)
    })
}

fn graph_strategy() -> impl Strategy<Value = (Graph, usize)> {
    (4usize..80, any::<u64>(), 1usize..7, 0.02f64..0.3).prop_map(|(n, seed, k, p)| {
        (gnp_connected(&GenConfig::with_seed(n, seed), p), k)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 2.1 via the exact DP: dominating + within the size bound.
    #[test]
    fn treedp_meets_lemma21((g, k) in tree_strategy()) {
        let t = RootedTree::from_graph(&g, NodeId(0));
        let d = min_k_dominating_tree(&t, k);
        prop_assert!(check_k_dominating(&g, &d, k).is_ok());
        prop_assert!(check_dominating_size(g.node_count(), k, d.len()).is_ok());
    }

    /// Every DOMPartition variant partitions the tree into connected
    /// clusters of ≥ k+1 nodes within its radius bound.
    #[test]
    fn partitions_meet_their_bounds((g, k) in tree_strategy()) {
        let nodes: Vec<NodeId> = g.nodes().collect();
        let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        let n = g.node_count();
        let k32 = k as u32;
        for (res, rad_bound) in [
            (dom_partition_1(&g, nodes.clone(), &edges, k), (4 * k32 * k32).max(1)),
            (dom_partition_2(&g, nodes.clone(), &edges, k), 5 * k32 + 2),
            (dom_partition(&g, nodes.clone(), &edges, k), 5 * k32 + 2),
        ] {
            let covered: usize = res.clusters.iter().map(|(_, m)| m.len()).sum();
            prop_assert_eq!(covered, n);
            if n >= k + 1 {
                prop_assert!(res.min_size() >= k + 1, "min size {} < {}", res.min_size(), k + 1);
            }
            let cl = kdom::core::fastdom::clusters_to_clustering(n, &res.clusters);
            prop_assert!(check_clusters(&g, &cl, 1, rad_bound).is_ok());
        }
    }

    /// Theorem 3.2: FastDOM_T contract on random trees.
    #[test]
    fn fastdom_t_theorem32((g, k) in tree_strategy()) {
        let res = fast_dom_t(&g, k, WithinCluster::OptimalDp);
        prop_assert!(check_fastdom_output(&g, &res.clustering, k).is_ok());
    }

    /// Theorem 4.4: FastDOM_G contract on random connected graphs.
    #[test]
    fn fastdom_g_theorem44((g, k) in graph_strategy()) {
        let res = fast_dom_g(&g, k);
        prop_assert!(check_fastdom_output(&g, &res.clustering, k).is_ok());
    }

    /// The faithful DiamDOM solver still dominates (with its +1-per-
    /// cluster size slack).
    #[test]
    fn fastdom_t_diamdom_solver_dominates((g, k) in tree_strategy()) {
        let res = fast_dom_t(&g, k, WithinCluster::DiamDom);
        prop_assert!(check_k_dominating(&g, res.dominators(), k).is_ok());
        let bound = (g.node_count() / (k + 1)).max(1) + res.coarse.len();
        prop_assert!(res.dominators().len() <= bound);
    }

    /// The fully per-node distributed DOMPartition_1 produces a valid
    /// partition with ≥ k+1 nodes per cluster on arbitrary random trees.
    #[test]
    fn distributed_partition1_contract((g, k) in tree_strategy()) {
        let (nodes, _) = kdom::core::dist::partition1::run_partition1(&g, NodeId(0), k);
        let n = g.node_count();
        let mut sizes = std::collections::HashMap::new();
        for v in 0..n {
            *sizes.entry(nodes[v].cluster).or_insert(0usize) += 1;
        }
        if n >= k + 1 {
            let min = sizes.values().copied().min().unwrap();
            prop_assert!(min >= k + 1, "cluster of {min} < {}", k + 1);
        }
        // depth chains are consistent
        for v in 0..n {
            match nodes[v].pc_parent {
                Some(p) => {
                    let w = g.neighbors(NodeId(v))[p.0].to;
                    prop_assert_eq!(nodes[w.0].cluster, nodes[v].cluster);
                    prop_assert_eq!(nodes[w.0].depth + 1, nodes[v].depth);
                }
                None => prop_assert!(nodes[v].is_center),
            }
        }
    }

    /// Charged rounds are monotone-ish in k and never zero for real runs.
    #[test]
    fn partition_charges_positive((g, k) in tree_strategy()) {
        prop_assume!(g.node_count() > k + 1);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        let res = dom_partition(&g, nodes, &edges, k);
        prop_assert!(res.charge.rounds > 0);
        prop_assert!(res.charge.virtual_rounds > 0 || res.cluster_count() == 1);
    }
}
