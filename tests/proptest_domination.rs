//! Property-based tests for the k-dominating-set algorithms: random
//! trees/graphs and k values, with every paper invariant as a property.
//! (Seeded-loop style: cases derive deterministically from fixed seeds.)

use kdom::core::fastdom::{fast_dom_g, fast_dom_t, WithinCluster};
use kdom::core::partition::{dom_partition, dom_partition_1, dom_partition_2};
use kdom::core::treedp::min_k_dominating_tree;
use kdom::core::verify::{
    check_clusters, check_dominating_size, check_fastdom_output, check_k_dominating,
};
use kdom::graph::generators::{gnp_connected, random_tree, GenConfig};
use kdom::graph::{Graph, NodeId, RootedTree};
use kdom_rng::StdRng;

fn random_tree_case(rng: &mut StdRng) -> (Graph, usize) {
    let n = rng.random_range(2usize..120);
    let seed = rng.next_u64();
    let k = rng.random_range(1usize..9);
    (random_tree(&GenConfig::with_seed(n, seed)), k)
}

fn random_graph_case(rng: &mut StdRng) -> (Graph, usize) {
    let n = rng.random_range(4usize..80);
    let seed = rng.next_u64();
    let k = rng.random_range(1usize..7);
    let p = 0.02 + rng.random_unit() * 0.28;
    (gnp_connected(&GenConfig::with_seed(n, seed), p), k)
}

/// Lemma 2.1 via the exact DP: dominating + within the size bound.
#[test]
fn treedp_meets_lemma21() {
    let mut rng = StdRng::seed_from_u64(0xD0_0001);
    for case in 0..64 {
        let (g, k) = random_tree_case(&mut rng);
        let t = RootedTree::from_graph(&g, NodeId(0));
        let d = min_k_dominating_tree(&t, k);
        assert!(check_k_dominating(&g, &d, k).is_ok(), "case {case}");
        assert!(
            check_dominating_size(g.node_count(), k, d.len()).is_ok(),
            "case {case}"
        );
    }
}

/// Every DOMPartition variant partitions the tree into connected
/// clusters of ≥ k+1 nodes within its radius bound.
#[test]
fn partitions_meet_their_bounds() {
    let mut rng = StdRng::seed_from_u64(0xD0_0002);
    for case in 0..64 {
        let (g, k) = random_tree_case(&mut rng);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        let n = g.node_count();
        let k32 = k as u32;
        for (res, rad_bound) in [
            (
                dom_partition_1(&g, nodes.clone(), &edges, k),
                (4 * k32 * k32).max(1),
            ),
            (dom_partition_2(&g, nodes.clone(), &edges, k), 5 * k32 + 2),
            (dom_partition(&g, nodes.clone(), &edges, k), 5 * k32 + 2),
        ] {
            let covered: usize = res.clusters.iter().map(|(_, m)| m.len()).sum();
            assert_eq!(covered, n, "case {case}");
            if n > k {
                assert!(
                    res.min_size() > k,
                    "case {case}: min size {} < {}",
                    res.min_size(),
                    k + 1
                );
            }
            let cl = kdom::core::fastdom::clusters_to_clustering(n, &res.clusters);
            assert!(check_clusters(&g, &cl, 1, rad_bound).is_ok(), "case {case}");
        }
    }
}

/// Theorem 3.2: FastDOM_T contract on random trees.
#[test]
fn fastdom_t_theorem32() {
    let mut rng = StdRng::seed_from_u64(0xD0_0003);
    for case in 0..64 {
        let (g, k) = random_tree_case(&mut rng);
        let res = fast_dom_t(&g, k, WithinCluster::OptimalDp);
        assert!(
            check_fastdom_output(&g, &res.clustering, k).is_ok(),
            "case {case}"
        );
    }
}

/// Theorem 4.4: FastDOM_G contract on random connected graphs.
#[test]
fn fastdom_g_theorem44() {
    let mut rng = StdRng::seed_from_u64(0xD0_0004);
    for case in 0..64 {
        let (g, k) = random_graph_case(&mut rng);
        let res = fast_dom_g(&g, k);
        assert!(
            check_fastdom_output(&g, &res.clustering, k).is_ok(),
            "case {case}"
        );
    }
}

/// The faithful DiamDOM solver still dominates (with its +1-per-cluster
/// size slack).
#[test]
fn fastdom_t_diamdom_solver_dominates() {
    let mut rng = StdRng::seed_from_u64(0xD0_0005);
    for case in 0..64 {
        let (g, k) = random_tree_case(&mut rng);
        let res = fast_dom_t(&g, k, WithinCluster::DiamDom);
        assert!(
            check_k_dominating(&g, res.dominators(), k).is_ok(),
            "case {case}"
        );
        let bound = (g.node_count() / (k + 1)).max(1) + res.coarse.len();
        assert!(res.dominators().len() <= bound, "case {case}");
    }
}

/// The fully per-node distributed DOMPartition_1 produces a valid
/// partition with ≥ k+1 nodes per cluster on arbitrary random trees.
#[test]
fn distributed_partition1_contract() {
    let mut rng = StdRng::seed_from_u64(0xD0_0006);
    for case in 0..64 {
        let (g, k) = random_tree_case(&mut rng);
        let (nodes, _) = kdom::core::dist::partition1::run_partition1(&g, NodeId(0), k);
        let n = g.node_count();
        let mut sizes = std::collections::HashMap::new();
        for node in nodes.iter().take(n) {
            *sizes.entry(node.cluster).or_insert(0usize) += 1;
        }
        if n > k {
            let min = sizes.values().copied().min().unwrap();
            assert!(min > k, "case {case}: cluster of {min} < {}", k + 1);
        }
        // depth chains are consistent
        for v in 0..n {
            match nodes[v].pc_parent {
                Some(p) => {
                    let w = g.neighbors(NodeId(v))[p.0].to;
                    assert_eq!(nodes[w.0].cluster, nodes[v].cluster, "case {case}");
                    assert_eq!(nodes[w.0].depth + 1, nodes[v].depth, "case {case}");
                }
                None => assert!(nodes[v].is_center, "case {case}"),
            }
        }
    }
}

/// Charged rounds are monotone-ish in k and never zero for real runs.
#[test]
fn partition_charges_positive() {
    let mut rng = StdRng::seed_from_u64(0xD0_0007);
    let mut ran = 0;
    for _ in 0..64 {
        let (g, k) = random_tree_case(&mut rng);
        if g.node_count() <= k + 1 {
            continue;
        }
        ran += 1;
        let nodes: Vec<NodeId> = g.nodes().collect();
        let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        let res = dom_partition(&g, nodes, &edges, k);
        assert!(res.charge.rounds > 0);
        assert!(res.charge.virtual_rounds > 0 || res.cluster_count() == 1);
    }
    assert!(ran > 32, "assumption filtered out too many cases");
}
