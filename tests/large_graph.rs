//! Large-graph legs: the determinism contract and the memory budget at
//! 10^5-node scale, on graphs produced by the streaming generators
//! (`gnm_connected` writes edges straight into the CSR arrays — no
//! `n × n` structures, no intermediate pair lists).
//!
//! The parity tests here are the million-node engine's proving ground:
//! with `shard_min` lowered, every multi-thread round takes the
//! destination-sharded bucketed merge, and the node states, the full
//! `RunReport` (peak memory included), and the synchronizer-α outputs
//! must all be byte-identical to the single-threaded legs. The
//! budget test pins the reported engine peak for a streamed Fast-MST run.
//!
//! Every test here is `#[ignore]`d: at this scale the legs take minutes
//! even in release mode, so the default (debug) `cargo test` run only
//! compiles them. The CI `large-graph` job runs the binary with
//! `--release -- --ignored --test-threads=1` — single-threaded because
//! the budget test touches the engine env vars (the composed runner
//! reads them) and must not race the explicit-config parity legs.

use kdom::congest::{AlphaSimulator, EngineConfig, Scheduling, Simulator};
use kdom::core::dist::bfs::BfsNode;
use kdom::core::dist::fragments::FragmentNode;
use kdom::core::verify::{check_k_dominating_with_threads, check_mst_fragments_with_threads};
use kdom::graph::generators::{gnm_connected, GenConfig};
use kdom::graph::mst_ref::kruskal_with_threads;
use kdom::graph::Graph;
use kdom::mst::fastmst::fast_mst;

const N: usize = 100_000;
const M: usize = 200_000;

/// The shared 10^5-node, 2×10^5-edge streamed graph.
fn big_graph() -> Graph {
    gnm_connected(&GenConfig::with_seed(N, 2026), M)
}

/// The configurations the large runs must agree across: both schedulers
/// single-threaded, plus a 4-thread active-set leg whose `shard_min` is
/// low enough that even late, sparse frontiers still split into multiple
/// shards (so the bucketed merge is exercised on every parallel round).
fn configs() -> Vec<(&'static str, EngineConfig)> {
    let base = EngineConfig::default().with_shard_min(64);
    vec![
        (
            "full-scan/1t",
            base.with_scheduling(Scheduling::FullScan).with_threads(1),
        ),
        ("active-set/1t", base.with_threads(1)),
        ("active-set/4t", base.with_threads(4)),
    ]
}

fn assert_parity<P, F>(g: &Graph, make_nodes: F, what: &str) -> String
where
    P: kdom::congest::Protocol + std::fmt::Debug,
    F: Fn(&Graph) -> Vec<P>,
{
    let mut baseline: Option<(String, String)> = None;
    for (name, cfg) in configs() {
        let mut sim = Simulator::with_config(g, make_nodes(g), cfg);
        sim.run(1_000_000).expect("large run quiesces");
        let nodes = format!("{:?}", sim.nodes());
        let report = format!("{:?}", sim.report());
        assert!(
            sim.report().peak_memory_bytes > 0,
            "{what}: engine must report peak memory"
        );
        match &baseline {
            None => baseline = Some((nodes, report)),
            Some((n, r)) => {
                assert_eq!(n, &nodes, "{what}: node states diverged under {name}");
                assert_eq!(r, &report, "{what}: RunReport diverged under {name}");
            }
        }
    }
    baseline.expect("at least one config ran").0
}

/// BFS across the full config matrix, then the same protocol under
/// synchronizer α: the asynchronous execution must land on the exact
/// depths of the synchronous baseline.
#[test]
#[ignore = "release-mode CI leg (minutes in debug); run with --ignored"]
fn bfs_parity_and_alpha_at_1e5() {
    let g = big_graph();
    let make = |g: &Graph| {
        (0..g.node_count())
            .map(|v| BfsNode::new(v == 0))
            .collect::<Vec<BfsNode>>()
    };
    let sync_nodes = assert_parity(&g, make, "large BFS");

    let mut alpha = AlphaSimulator::new(&g, make(&g), 9, 3);
    alpha.run(10_000_000).expect("α BFS quiesces");
    assert_eq!(
        sync_nodes,
        format!("{:?}", alpha.into_nodes()),
        "α diverged from the synchronous engine at 10^5 nodes"
    );
}

/// SimpleMST fragments at 10^5 nodes: the message-heaviest parity leg —
/// fragment merges keep a large active set alive for many rounds, so the
/// bucketed merge carries real per-round volume here.
#[test]
#[ignore = "release-mode CI leg (minutes in debug); run with --ignored"]
fn simple_mst_parity_at_1e5() {
    let g = big_graph();
    assert_parity(
        &g,
        |g| {
            g.nodes()
                .map(|v| FragmentNode::new(6, g.id_of(v)))
                .collect::<Vec<FragmentNode>>()
        },
        "large SimpleMST",
    );
}

/// The data-parallel oracle certifying a streamed Fast-MST run at 10^5
/// nodes: the reference Kruskal (chunk-sorted + merged) and the
/// dominator-assignment multi-source BFS (ranked-frontier level-sync),
/// at 1 and 4 workers. Verdicts must be byte-identical at every thread
/// count; on a ≥4-core host the 4-worker certification must also beat
/// the sequential one. Undersubscribed machines skip the timing claim
/// with a log line — the same policy as the bench harness's
/// `can_bench_threads` — but always check equality (correctness needs no
/// real parallelism).
#[test]
#[ignore = "release-mode CI leg (minutes in debug); run with --ignored"]
fn parallel_oracle_certifies_fast_mst_at_1e5() {
    let g = big_graph();
    let run = fast_mst(&g);
    assert_eq!(run.mst_edges.len(), N - 1, "spanning tree incomplete");
    // every 50th node: far denser than needed, since diam(G) << k = ⌈√n⌉
    let sources: Vec<kdom::graph::NodeId> = (0..N).step_by(50).map(kdom::graph::NodeId).collect();

    let certify = |threads: usize| {
        (
            kruskal_with_threads(&g, threads),
            check_mst_fragments_with_threads(&g, &run.mst_edges, threads),
            check_k_dominating_with_threads(&g, &sources, run.k, threads),
        )
    };

    let seq = certify(1);
    let par = certify(4);
    assert_eq!(seq.0, par.0, "reference MST diverged across thread counts");
    assert_eq!(seq.1, par.1, "MST-fragment verdict diverged");
    assert_eq!(seq.2, par.2, "domination verdict diverged");
    seq.1.as_ref().expect("Fast-MST edges form the unique MST");
    seq.2.as_ref().expect("sampled sources k-dominate");

    let nproc = std::thread::available_parallelism().map_or(0, usize::from);
    if nproc < 4 {
        eprintln!("parallel_oracle: skipping 4-thread timing claim: only {nproc} CPU(s) available");
        return;
    }
    let time = |threads: usize| {
        (0..3)
            .map(|_| {
                let t = std::time::Instant::now();
                let (mst, frag, dom) = std::hint::black_box(certify(threads));
                assert!(!mst.is_empty() && frag.is_ok() && dom.is_ok());
                t.elapsed()
            })
            .min()
            .expect("three timed runs")
    };
    let t_seq = time(1);
    let t_par = time(4);
    eprintln!(
        "parallel_oracle: certification {:.1} ms sequential vs {:.1} ms at 4 workers",
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3
    );
    assert!(
        t_par < t_seq,
        "4-worker oracle ({t_par:?}) not faster than sequential ({t_seq:?}) on a {nproc}-core host"
    );
}

/// CI `large-graph` smoke: streamed Fast-MST (`k = ⌈√n⌉`) at 10^5 nodes
/// under `KDOM_THREADS=4`, asserting the reported engine peak memory
/// stays under a pinned budget. The budget is deliberately generous —
/// it exists to catch accidental O(n²) structures or unbounded staging
/// growth, not to tune constants.
#[test]
#[ignore = "release-mode CI leg (minutes in debug); run with --ignored"]
fn fast_mst_1e5_peak_memory_budget() {
    const BUDGET: u64 = 256 << 20; // 256 MiB for n = 10^5, m = 2×10^5

    std::env::set_var("KDOM_THREADS", "4");
    std::env::set_var("KDOM_SCHED", "active");
    let g = big_graph();
    let run = fast_mst(&g);
    std::env::remove_var("KDOM_THREADS");
    std::env::remove_var("KDOM_SCHED");

    assert_eq!(run.mst_edges.len(), N - 1, "spanning tree incomplete");
    assert_eq!(run.stalls, 0, "pipeline stalled (Lemma 5.3)");
    let peak = run.pipeline_report.peak_memory_bytes;
    assert!(peak > 0, "pipeline must report peak memory");
    assert!(
        peak <= BUDGET,
        "pipeline peak {peak} bytes exceeds the {BUDGET}-byte budget"
    );
    eprintln!(
        "fast_mst_1e5: peak {} MiB of {} MiB budget, {} total rounds",
        peak >> 20,
        BUDGET >> 20,
        run.total_rounds()
    );
}
