//! Property tests for the synchronizer-α executor: randomized protocols,
//! graphs, and delay seeds must reproduce the synchronous outputs — with
//! and without injected faults. (Seeded-loop style: every case derives
//! deterministically from a fixed seed, so failures are reproducible.)

use kdom::congest::{run_protocol, run_protocol_alpha, run_protocol_alpha_reliable, FaultPlan};
use kdom::core::dist::diamdom::{DiamDomNode, TreeConfig};
use kdom::core::dist::election::ElectionNode;
use kdom::graph::generators::{gnp_connected, GenConfig};
use kdom::graph::{Graph, NodeId};
use kdom_rng::StdRng;

fn random_graph(rng: &mut StdRng) -> Graph {
    let n = rng.random_range(4usize..40);
    let seed = rng.next_u64();
    let p = 0.05 + rng.random_unit() * 0.25;
    gnp_connected(&GenConfig::with_seed(n, seed), p)
}

fn diamdom_nodes(g: &Graph, k: usize) -> Vec<DiamDomNode> {
    let (bfs, _) = kdom::core::dist::bfs::run_bfs(g, NodeId(0));
    bfs.iter()
        .map(|b| {
            DiamDomNode::new(TreeConfig {
                parent: b.parent,
                children: b.children.clone(),
                k,
                preset_depth: b.depth,
            })
        })
        .collect()
}

/// Leader election under α always agrees on the max id, for any delay
/// pattern.
#[test]
fn election_alpha_agrees() {
    let mut rng = StdRng::seed_from_u64(0xA1FA_0001);
    for case in 0..24 {
        let g = random_graph(&mut rng);
        let seed = rng.next_u64();
        let delay = rng.random_range(1u64..6);
        let nodes = (0..g.node_count()).map(|_| ElectionNode::new()).collect();
        let (nodes, _) = run_protocol_alpha(&g, nodes, seed, delay, 500_000).unwrap();
        let max_id = g.nodes().map(|v| g.id_of(v)).max().unwrap();
        assert!(nodes.iter().all(|n| n.best == max_id), "case {case}");
    }
}

/// The schedule-driven DiamDOM census protocol — the hardest case for a
/// synchronizer, since everything hangs off exact round numbers —
/// produces the identical dominating set under α.
#[test]
fn diamdom_alpha_matches_sync() {
    let mut rng = StdRng::seed_from_u64(0xA1FA_0002);
    for case in 0..24 {
        let g = random_graph(&mut rng);
        let seed = rng.next_u64();
        let k = 2;
        let sync = run_protocol(&g, diamdom_nodes(&g, k), 100_000).unwrap().0;
        let alpha = run_protocol_alpha(&g, diamdom_nodes(&g, k), seed, 3, 2_000_000)
            .unwrap()
            .0;
        for v in 0..g.node_count() {
            assert_eq!(
                sync[v].is_dominator, alpha[v].is_dominator,
                "case {case} node {v}"
            );
            assert_eq!(sync[v].chosen, alpha[v].chosen, "case {case} node {v}");
        }
    }
}

/// α never loses or duplicates payload messages: the payload count
/// equals the synchronous message count.
#[test]
fn alpha_payload_count_matches() {
    let mut rng = StdRng::seed_from_u64(0xA1FA_0003);
    for case in 0..24 {
        let g = random_graph(&mut rng);
        let seed = rng.next_u64();
        let k = 2;
        let (_, sync_report) = run_protocol(&g, diamdom_nodes(&g, k), 100_000).unwrap();
        let (_, alpha_report) =
            run_protocol_alpha(&g, diamdom_nodes(&g, k), seed, 4, 2_000_000).unwrap();
        assert_eq!(
            alpha_report.payload_messages, sync_report.messages,
            "case {case}"
        );
    }
}

/// The recovery property: under randomized per-link loss, duplication,
/// and extra delay, the reliable layer restores exactly-once delivery and
/// the α outputs stay **byte-identical** to the fault-free synchronous
/// execution — for a schedule-driven protocol, the strictest test there is.
#[test]
fn faulty_reliable_alpha_matches_sync() {
    let mut rng = StdRng::seed_from_u64(0xA1FA_0004);
    for case in 0..12 {
        let g = random_graph(&mut rng);
        let seed = rng.next_u64();
        let k = 2;
        let plan = FaultPlan::new(rng.next_u64())
            .drop_prob(0.05 + rng.random_unit() * 0.2)
            .dup_prob(rng.random_unit() * 0.1)
            .max_extra_delay(rng.random_range(0u64..4));
        let sync = run_protocol(&g, diamdom_nodes(&g, k), 100_000).unwrap().0;
        let (alpha, report) =
            run_protocol_alpha_reliable(&g, diamdom_nodes(&g, k), seed, 3, &plan, 4_000_000)
                .unwrap();
        for v in 0..g.node_count() {
            assert_eq!(
                sync[v].is_dominator, alpha[v].is_dominator,
                "case {case} node {v}"
            );
            assert_eq!(sync[v].chosen, alpha[v].chosen, "case {case} node {v}");
        }
        assert!(
            report.dropped_messages > 0 || report.duplicated_messages > 0,
            "case {case}: the adversary never fired — weaken the plan check"
        );
    }
}

/// Election under faults + recovery also agrees with the fault-free
/// answer (max id), across random loss rates up to 30%.
#[test]
fn faulty_reliable_election_agrees() {
    let mut rng = StdRng::seed_from_u64(0xA1FA_0005);
    for case in 0..12 {
        let g = random_graph(&mut rng);
        let seed = rng.next_u64();
        let plan = FaultPlan::new(rng.next_u64()).drop_prob(0.3);
        let nodes = (0..g.node_count()).map(|_| ElectionNode::new()).collect();
        let (nodes, report) =
            run_protocol_alpha_reliable(&g, nodes, seed, 2, &plan, 1_000_000).unwrap();
        let max_id = g.nodes().map(|v| g.id_of(v)).max().unwrap();
        assert!(nodes.iter().all(|n| n.best == max_id), "case {case}");
        assert!(
            report.retransmissions > 0 || report.dropped_messages == 0,
            "case {case}"
        );
    }
}

/// Root-free Fast-MST stays correct across topologies (deterministic
/// spot-check kept for speed).
#[test]
fn elected_fast_mst_is_correct() {
    use kdom::graph::generators::Family;
    use kdom::graph::mst_ref::is_mst;
    for fam in [Family::Grid, Family::Gnp, Family::RandomTree] {
        let g = fam.generate(120, 44);
        let run = kdom::mst::fastmst::fast_mst_elected(&g);
        assert!(is_mst(&g, &run.mst_edges), "{fam}");
    }
}
