//! Property tests for the synchronizer-α executor: arbitrary protocols,
//! graphs, and delay seeds must reproduce the synchronous outputs.

use proptest::prelude::*;

use kdom::congest::{run_protocol, run_protocol_alpha};
use kdom::core::dist::diamdom::{DiamDomNode, TreeConfig};
use kdom::core::dist::election::ElectionNode;
use kdom::graph::generators::{gnp_connected, GenConfig};
use kdom::graph::{Graph, NodeId};

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (4usize..40, any::<u64>(), 0.05f64..0.3)
        .prop_map(|(n, seed, p)| gnp_connected(&GenConfig::with_seed(n, seed), p))
}

fn diamdom_nodes(g: &Graph, k: usize) -> Vec<DiamDomNode> {
    let (bfs, _) = kdom::core::dist::bfs::run_bfs(g, NodeId(0));
    bfs.iter()
        .map(|b| {
            DiamDomNode::new(TreeConfig {
                parent: b.parent,
                children: b.children.clone(),
                k,
                preset_depth: b.depth,
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Leader election under α always agrees on the max id, for any
    /// delay pattern.
    #[test]
    fn election_alpha_agrees(g in graph_strategy(), seed in any::<u64>(), delay in 1u64..6) {
        let nodes = (0..g.node_count()).map(|_| ElectionNode::new()).collect();
        let (nodes, _) = run_protocol_alpha(&g, nodes, seed, delay, 500_000).unwrap();
        let max_id = g.nodes().map(|v| g.id_of(v)).max().unwrap();
        prop_assert!(nodes.iter().all(|n| n.best == max_id));
    }

    /// The schedule-driven DiamDOM census protocol — the hardest case for
    /// a synchronizer, since everything hangs off exact round numbers —
    /// produces the identical dominating set under α.
    #[test]
    fn diamdom_alpha_matches_sync(g in graph_strategy(), seed in any::<u64>()) {
        let k = 2;
        let sync = run_protocol(&g, diamdom_nodes(&g, k), 100_000).unwrap().0;
        let alpha = run_protocol_alpha(&g, diamdom_nodes(&g, k), seed, 3, 2_000_000)
            .unwrap()
            .0;
        for v in 0..g.node_count() {
            prop_assert_eq!(sync[v].is_dominator, alpha[v].is_dominator, "node {}", v);
            prop_assert_eq!(sync[v].chosen, alpha[v].chosen);
        }
    }

    /// α never loses or duplicates payload messages: the payload count
    /// equals the synchronous message count.
    #[test]
    fn alpha_payload_count_matches(g in graph_strategy(), seed in any::<u64>()) {
        let k = 2;
        let (_, sync_report) = run_protocol(&g, diamdom_nodes(&g, k), 100_000).unwrap();
        let (_, alpha_report) =
            run_protocol_alpha(&g, diamdom_nodes(&g, k), seed, 4, 2_000_000).unwrap();
        prop_assert_eq!(alpha_report.payload_messages, sync_report.messages);
    }
}

/// Root-free Fast-MST stays correct across topologies (deterministic
/// spot-check kept outside proptest for speed).
#[test]
fn elected_fast_mst_is_correct() {
    use kdom::graph::generators::Family;
    use kdom::graph::mst_ref::is_mst;
    for fam in [Family::Grid, Family::Gnp, Family::RandomTree] {
        let g = fam.generate(120, 44);
        let run = kdom::mst::fastmst::fast_mst_elected(&g);
        assert!(is_mst(&g, &run.mst_edges), "{fam}");
    }
}
