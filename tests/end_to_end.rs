//! End-to-end integration: the whole public API surface, exactly as a
//! downstream user would drive it.

use kdom::core::fastdom::{fast_dom_g, fast_dom_t, WithinCluster};
use kdom::core::verify::{check_fastdom_output, dominating_size_bound};
use kdom::graph::generators::Family;
use kdom::graph::mst_ref::is_mst;
use kdom::graph::properties::{diameter, is_connected};
use kdom::graph::NodeId;
use kdom::mst::baselines::{collect_all_mst, phase_doubling_mst, pipeline_only_mst};
use kdom::mst::fastmst::{fast_mst, fast_mst_with_k};
use kdom::mst::pipeline::run_pipeline;

#[test]
fn fastdom_g_public_contract() {
    for fam in Family::ALL {
        for k in [2usize, 5] {
            let g = fam.generate(150, 99);
            assert!(is_connected(&g));
            let res = fast_dom_g(&g, k);
            check_fastdom_output(&g, &res.clustering, k)
                .unwrap_or_else(|e| panic!("{fam} k={k}: {e}"));
            assert!(res.dominators().len() <= dominating_size_bound(g.node_count(), k));
        }
    }
}

#[test]
fn fastdom_t_both_solvers() {
    for fam in Family::TREES {
        let g = fam.generate(120, 5);
        for solver in [WithinCluster::OptimalDp, WithinCluster::DiamDom] {
            let res = fast_dom_t(&g, 4, solver);
            kdom::core::verify::check_k_dominating(&g, res.dominators(), 4)
                .unwrap_or_else(|e| panic!("{fam} {solver:?}: {e}"));
        }
    }
}

#[test]
fn all_four_mst_algorithms_agree() {
    for fam in Family::ALL {
        let g = fam.generate(100, 31);
        let expected = kdom::graph::mst_ref::kruskal(&g);
        let total = |edges: &[kdom::graph::EdgeId]| g.total_weight(edges.iter().copied());
        let want = total(&expected);
        let fast = fast_mst(&g);
        assert_eq!(total(&fast.mst_edges), want, "{fam} fast");
        assert_eq!(total(&phase_doubling_mst(&g).mst_edges), want, "{fam} pd");
        assert_eq!(total(&pipeline_only_mst(&g).mst_edges), want, "{fam} po");
        assert_eq!(total(&collect_all_mst(&g).mst_edges), want, "{fam} ca");
    }
}

#[test]
fn fast_mst_round_shape_on_grids() {
    // doubling the side (4x nodes) should much less than double... the
    // √n-shaped stages: frag+partition ~2x; pipeline+bfs tracks N+Diam.
    let small = fast_mst(&Family::Grid.generate(256, 7));
    let large = fast_mst(&Family::Grid.generate(1024, 7));
    let sqrt_part_small = small.fragment_rounds + small.partition_charge.rounds;
    let sqrt_part_large = large.fragment_rounds + large.partition_charge.rounds;
    assert!(
        sqrt_part_large < sqrt_part_small * 3,
        "√n-shaped stages grew {sqrt_part_small} -> {sqrt_part_large}"
    );
}

#[test]
fn pipeline_handles_custom_clusterings() {
    let g = Family::Gnp.generate(90, 13);
    // arbitrary 3-coloring as a (non-contiguous) clustering: pipeline
    // still computes the MST of the quotient multigraph
    let clusters: Vec<u64> = g.nodes().map(|v| (v.0 % 3) as u64).collect();
    let run = run_pipeline(&g, NodeId(0), &clusters, true, false);
    assert_eq!(run.stalls, 0);
    assert_eq!(
        run.mst_weights.len(),
        2,
        "3 clusters need 2 connecting edges"
    );
}

#[test]
fn k_extremes() {
    let g = Family::Gnp.generate(80, 21);
    // k = 1: dominating set in the classical sense
    let res = fast_dom_g(&g, 1);
    check_fastdom_output(&g, &res.clustering, 1).unwrap();
    // k ≥ n: SimpleMST merges everything into one fragment and a single
    // dominator suffices
    let k = g.node_count();
    let res = fast_dom_g(&g, k);
    check_fastdom_output(&g, &res.clustering, k).unwrap();
    assert_eq!(res.dominators().len(), 1);
    // k = diameter+1: not necessarily minimal (one dominator per MST
    // fragment), but the Theorem 4.4 bound still holds
    let k = diameter(&g) as usize + 1;
    let res = fast_dom_g(&g, k);
    check_fastdom_output(&g, &res.clustering, k).unwrap();
}

#[test]
fn fast_mst_k_parameter_is_safe_everywhere() {
    let g = Family::Grid.generate(64, 3);
    for k in 1..=10 {
        let run = fast_mst_with_k(&g, k);
        assert!(is_mst(&g, &run.mst_edges), "k = {k}");
        assert_eq!(run.stalls, 0, "k = {k}");
    }
}
