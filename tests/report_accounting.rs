//! `RunReport` accounting across composed multi-phase runs.
//!
//! The compositions (FastDOM, Fast-MST) stitch their per-stage reports
//! together with [`RunReport::absorb`] and account analytic stages with
//! [`RunReport::charge_rounds`]. These tests pin the composition algebra
//! against real protocol runs — per-phase reports must sum to the
//! absorbed total field by field, charged rounds must touch *only* the
//! round count, and the α → sync projection must never smuggle
//! α-specific bit counts into a synchronous breakdown.

use kdom::congest::{run_protocol_alpha_reliable, FaultPlan, RunReport, Simulator};
use kdom::core::dist::bfs::{run_bfs, BfsNode};
use kdom::core::dist::fragments::run_simple_mst;
use kdom::graph::generators::{gnp_connected, GenConfig};
use kdom::graph::NodeId;

/// Real per-phase reports (SimpleMST, a charged partition stage, BFS)
/// absorbed into one total must agree with the field-by-field arithmetic:
/// additive fields sum, max fields take the maximum, and the charge adds
/// rounds only.
#[test]
fn absorb_and_charge_compose_across_phases() {
    let g = gnp_connected(&GenConfig::with_seed(120, 5), 0.06);
    let mst = run_simple_mst(&g, 4);
    let (_, bfs_report) = run_bfs(&g, NodeId(0));
    let phases = [mst.report.clone(), bfs_report];
    let charge = 17u64;

    let mut total = RunReport::default();
    for p in &phases {
        total.absorb(p);
    }
    total.charge_rounds(charge);

    assert!(
        phases.iter().all(|p| p.rounds > 0 && p.messages > 0),
        "phases must be non-trivial for the test to mean anything: {phases:?}"
    );
    assert_eq!(
        total.rounds,
        phases.iter().map(|p| p.rounds).sum::<u64>() + charge
    );
    assert_eq!(
        total.messages,
        phases.iter().map(|p| p.messages).sum::<u64>()
    );
    assert_eq!(
        total.total_bits,
        phases.iter().map(|p| p.total_bits).sum::<u64>()
    );
    assert_eq!(
        total.max_message_bits,
        phases.iter().map(|p| p.max_message_bits).max().unwrap()
    );
    assert_eq!(
        total.peak_messages_per_round,
        phases
            .iter()
            .map(|p| p.peak_messages_per_round)
            .max()
            .unwrap()
    );
    assert_eq!(
        total.dropped_messages,
        phases.iter().map(|p| p.dropped_messages).sum::<u64>()
    );
    assert_eq!(
        total.duplicated_messages,
        phases.iter().map(|p| p.duplicated_messages).sum::<u64>()
    );
    assert_eq!(
        total.retransmissions,
        phases.iter().map(|p| p.retransmissions).sum::<u64>()
    );
}

/// A charged (analytic) phase must not distort any message statistic:
/// absorbing a report built purely from `charge_rounds` is the identity
/// on everything but `rounds`.
#[test]
fn charged_phase_touches_rounds_only() {
    let g = gnp_connected(&GenConfig::with_seed(80, 2), 0.08);
    let mst = run_simple_mst(&g, 3);
    let mut total = mst.report.clone();

    let mut charged = RunReport::default();
    charged.charge_rounds(123);
    total.absorb(&charged);

    let mut want = mst.report.clone();
    want.rounds += 123;
    assert_eq!(total, want, "charge leaked into a message statistic");
}

/// The α → `RunReport` projection counts pulses as rounds and delivered
/// payloads as messages, and deliberately zeroes the bit-level fields
/// (α control traffic dominates them, so reporting them as CONGEST
/// message bits would be misleading). In a fault-free run the projected
/// message count must equal the synchronous one — same automata, same
/// protocol messages, exactly-once delivery.
#[test]
fn alpha_projection_matches_sync_messages_and_zeroes_bits() {
    let g = gnp_connected(&GenConfig::with_seed(90, 3), 0.07);
    let make = || {
        (0..g.node_count())
            .map(|v| BfsNode::new(v == 0))
            .collect::<Vec<BfsNode>>()
    };

    let mut sync = Simulator::new(&g, make());
    let sync_report = sync.run(10_000).expect("sync BFS quiesces");

    let plan = FaultPlan::new(0); // fault-free
    let (_, alpha_report) =
        run_protocol_alpha_reliable(&g, make(), 13, 3, &plan, 500_000).expect("α BFS quiesces");
    let projected = RunReport::from(alpha_report);

    assert_eq!(
        projected.messages, sync_report.messages,
        "fault-free α delivered a different payload count than sync"
    );
    assert!(projected.rounds > 0);
    assert_eq!(projected.total_bits, 0, "α bit totals must project to zero");
    assert_eq!(projected.max_message_bits, 0);
    assert_eq!(projected.peak_messages_per_round, 0);
    assert_eq!(projected.dropped_messages, 0);
    assert_eq!(projected.duplicated_messages, 0);
    assert_eq!(projected.retransmissions, 0);
}
