//! Content-address discipline for the result cache: every advertised
//! [`RunSpec`] field separates keys, graph identity is structural (an
//! isomorphic graph assembled in a different order is a *different*
//! graph to the cache), and a hit returns the original run's bytes.

use std::sync::Arc;

use kdom::congest::{Algo, CacheKey, ExecSpec, JobPool, JobStatus, RunSpec, Scheduling};
use kdom::graph::generators::Family;
use kdom::graph::{GraphBuilder, NodeId};
use kdom::mst::service;

#[test]
fn specs_differing_in_one_field_key_differently() {
    let g = Family::Grid.generate(64, 3);
    let base = RunSpec::default().with_k(4).with_seed(7);
    let variants = [
        ("seed", base.clone().with_seed(8)),
        ("k", base.clone().with_k(5)),
        ("wire mode", base.clone().with_wire_exact(!base.wire_exact)),
        ("threads", base.clone().with_threads(base.threads + 1)),
        ("algorithm", base.clone().with_algo(Algo::Bfs)),
        (
            "scheduling",
            base.clone().with_scheduling(Scheduling::FullScan),
        ),
        ("trace", base.clone().with_trace(true)),
        (
            "backend",
            base.clone()
                .with_exec(ExecSpec::ReliableAlpha { max_delay: 4 }),
        ),
    ];
    let base_key = CacheKey::of(&g, &base);
    for (field, spec) in &variants {
        assert_ne!(
            CacheKey::of(&g, spec),
            base_key,
            "changing only the {field} must change the cache key"
        );
    }
    // and the keys are pairwise distinct, not just distinct from base
    let mut keys: Vec<CacheKey> = variants.iter().map(|(_, s)| CacheKey::of(&g, s)).collect();
    keys.push(base_key);
    let mut dedup = keys.clone();
    dedup.sort_by_key(|k| (k.graph, k.spec));
    dedup.dedup();
    assert_eq!(dedup.len(), keys.len(), "keys must be pairwise distinct");
}

/// Two structurally identical triangles ("isomorphic" with the identity
/// node mapping) whose edges were inserted in different orders: edge ids
/// and adjacency order differ, so the canonical fingerprint — and with
/// it the cache key — must differ. The cache keys *runs*, and the
/// engine's schedules walk adjacency in CSR order.
#[test]
fn isomorphic_but_differently_ordered_graphs_miss() {
    let tri = |order: &[(usize, usize, u64)]| {
        let mut b = GraphBuilder::new(3);
        for &(u, v, w) in order {
            b.add_edge(NodeId(u), NodeId(v), w);
        }
        b.build()
    };
    let a = tri(&[(0, 1, 10), (1, 2, 20), (0, 2, 30)]);
    let b = tri(&[(0, 2, 30), (0, 1, 10), (1, 2, 20)]);
    assert_ne!(a.fingerprint(), b.fingerprint());
    let spec = RunSpec::default();
    assert_ne!(
        CacheKey::of(&a, &spec),
        CacheKey::of(&b, &spec),
        "a reordered edge list is a different content address"
    );

    // the pool agrees: the second graph is a miss, not a bogus hit
    let pool = JobPool::new(1, 1 << 20, service::runner());
    pool.submit(Arc::new(a), spec.clone())
        .wait()
        .expect("first");
    let h = pool.submit(Arc::new(b), spec);
    h.wait().expect("second");
    assert_eq!(h.status(), JobStatus::Done { from_cache: false });
    assert_eq!(pool.stats().engine_runs, 2);
}

#[test]
fn a_hit_returns_the_byte_identical_report() {
    let g = Arc::new(Family::Gnp.generate(48, 5));
    let spec = RunSpec::default().with_algo(Algo::FastDomG).with_k(3);
    let pool = JobPool::new(2, 1 << 20, service::runner());

    let first = pool.submit(Arc::clone(&g), spec.clone());
    let out1 = first.wait().expect("miss runs the engine");
    let second = pool.submit(g, spec);
    let out2 = second.wait().expect("hit is served from cache");

    assert_eq!(second.status(), JobStatus::Done { from_cache: true });
    assert!(
        Arc::ptr_eq(&out1, &out2),
        "a hit is a pointer clone of the cached entry"
    );
    assert_eq!(out1.report, out2.report, "byte-identical RunReport");
    assert_eq!(out1.outputs, out2.outputs, "byte-identical outputs");
    let stats = pool.stats();
    assert_eq!(stats.engine_runs, 1);
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 1);
}
