//! Chaos harness: seeded random churn+fault schedules against the
//! self-healing re-fixup pipeline, verified epoch-by-epoch against the
//! sequential oracle.
//!
//! Every schedule is a pure function of `(base graph, config, seed)`
//! ([`kdom::congest::gen_schedule`]), so a failing seed *is* the
//! reproduction. The sweep runs each schedule across engine thread
//! counts {1, 4} and across the sync / α / reliable-α executors and
//! demands byte-identical forests; after every churn epoch the repaired
//! forest must match [`simple_mst_forest`] on the current topology, and
//! the incremental path must agree with a fresh full restart. When a
//! schedule fails, [`kdom::congest::shrink`] bisects it down to a
//! minimal reproducing event list — the injected-bug smoke test shows a
//! 100-event schedule collapsing to a single culprit event.
//!
//! The `#[ignore]`d `chaos_nightly` sweep reads `KDOM_CHAOS_*` for a
//! bigger budget and writes the minimal seed plus a JSONL trace to
//! `KDOM_CHAOS_DIR` on failure (CI uploads them as artifacts).

use std::collections::HashMap;

use kdom::congest::{
    apply_churn, gen_schedule, gen_schedule_with_mix, shrink, ChaosConfig, ChaosSchedule,
    ChurnEvent, EngineConfig, EventMix, FaultPlan,
};
use kdom::core::dist::executor::Executor;
use kdom::core::dist::fragments::{run_simple_mst_configured, DistFragments};
use kdom::core::dist::partition1::run_partition1;
use kdom::core::dist::refixup::{refixup_partition1, run_fragment_epochs, FragmentEpochOutcome};
use kdom::core::fastdom::clusters_to_clustering;
use kdom::core::fragments::simple_mst_forest;
use kdom::core::verify::check_clusters;
use kdom::graph::generators::Family;
use kdom::graph::{EdgeId, Graph, NodeId};

/// Canonical form of a fragment forest: sorted edges, sorted roots, and
/// the partition renumbered by first appearance. Two forests are the
/// same forest iff their canonical forms are equal.
fn canonical(f: &DistFragments) -> (Vec<EdgeId>, Vec<NodeId>, Vec<usize>) {
    let mut e = f.tree_edges.clone();
    e.sort_unstable();
    let mut r = f.roots.clone();
    r.sort_unstable();
    let mut seen = HashMap::new();
    let frag = f
        .fragment_of
        .iter()
        .map(|&x| {
            let next = seen.len();
            *seen.entry(x).or_insert(next)
        })
        .collect();
    (e, r, frag)
}

/// Asserts `f` equals the sequential oracle on `g` (independent of the
/// certificate inside the re-fixup — this recomputes the oracle here).
fn assert_matches_oracle(g: &Graph, f: &DistFragments, k: usize, ctx: &str) {
    let oracle = simple_mst_forest(g, k);
    let mut oe = oracle.tree_edges.clone();
    oe.sort_unstable();
    let mut or = oracle.roots.clone();
    or.sort_unstable();
    let (ce, cr, cf) = canonical(f);
    assert_eq!(ce, oe, "{ctx}: tree edges diverge from the oracle");
    assert_eq!(cr, or, "{ctx}: roots diverge from the oracle");
    let mut seen = HashMap::new();
    let of: Vec<usize> = oracle
        .fragment_of
        .iter()
        .map(|&x| {
            let next = seen.len();
            *seen.entry(x).or_insert(next)
        })
        .collect();
    assert_eq!(cf, of, "{ctx}: partition diverges from the oracle");
}

/// The plan's transient faults with the churn epochs stripped — what the
/// reliable-α executor should carry (epochs are consumed by the epoch
/// driver, not the transport).
fn transient_only(plan: &FaultPlan) -> FaultPlan {
    FaultPlan {
        epochs: Vec::new(),
        ..plan.clone()
    }
}

/// One leg of the sweep: a labelled executor + engine config.
fn legs(sched: &ChaosSchedule) -> Vec<(&'static str, Executor, EngineConfig)> {
    vec![
        (
            "sync-t1",
            Executor::Sync,
            EngineConfig::default().with_threads(1),
        ),
        (
            "sync-t4",
            Executor::Sync,
            EngineConfig::default().with_threads(4),
        ),
        (
            "alpha",
            Executor::ReliableAlpha {
                seed: sched.seed,
                max_delay: 2,
                plan: FaultPlan::new(sched.seed), // fault-free α
            },
            EngineConfig::default(),
        ),
        (
            "reliable-alpha",
            Executor::ReliableAlpha {
                seed: sched.seed,
                max_delay: 2,
                plan: transient_only(&sched.plan),
            },
            EngineConfig::default(),
        ),
    ]
}

/// Runs one schedule through every leg and cross-checks everything.
/// Returns the per-epoch outcomes of the reference leg.
fn run_and_check(base: &Graph, sched: &ChaosSchedule, k: usize) -> Vec<FragmentEpochOutcome> {
    let all: Vec<(&str, Vec<FragmentEpochOutcome>)> = legs(sched)
        .into_iter()
        .map(|(label, exec, config)| {
            let outcomes =
                run_fragment_epochs(base, &sched.plan, k, &exec, config).unwrap_or_else(|e| {
                    panic!("seed {} {label}: schedule does not apply: {e}", sched.seed)
                });
            (label, outcomes)
        })
        .collect();
    let (_, reference) = &all[0];
    assert_eq!(reference.len(), sched.plan.epochs.len() + 1);

    for (label, outcomes) in &all {
        assert_eq!(
            outcomes.len(),
            reference.len(),
            "seed {} {label}",
            sched.seed
        );
        for (i, (got, want)) in outcomes.iter().zip(reference).enumerate() {
            let ctx = format!("seed {} {label} epoch {i}", sched.seed);
            // every epoch's forest verifies against the sequential oracle
            assert_matches_oracle(&got.graph, &got.fragments, k, &ctx);
            // byte-identical across legs: same parents, same forest, and
            // the same incremental-vs-full decision with the same scope
            assert_eq!(
                got.fragments.parents, want.fragments.parents,
                "{ctx}: parent ports diverge across legs"
            );
            assert_eq!(
                canonical(&got.fragments),
                canonical(&want.fragments),
                "{ctx}"
            );
            assert_eq!(got.scope, want.scope, "{ctx}: scope diverges");
            assert_eq!(
                got.full_restart, want.full_restart,
                "{ctx}: restart decision diverges"
            );
        }
    }

    // thread counts 1 vs 4 are byte-identical including the RunReport
    let t1 = &all[0].1;
    let t4 = &all[1].1;
    for (i, (a, b)) in t1.iter().zip(t4).enumerate() {
        assert_eq!(
            a.fragments.report, b.fragments.report,
            "seed {} epoch {i}: reports diverge across thread counts",
            sched.seed
        );
    }
    all.into_iter().next().unwrap().1
}

/// The headline sweep: ≥ 50 seeded random churn schedules; after every
/// epoch the repaired forest verifies against the sequential oracle,
/// byte-identical across thread counts {1, 4} and across the
/// sync/α/reliable-α executors.
#[test]
fn fifty_seeded_schedules_survive_churn_on_every_leg() {
    let cfg = ChaosConfig {
        schedules: 50,
        epochs: 3,
        events_per_epoch: 2,
        ..ChaosConfig::default()
    };
    // a grid: sparse enough that a churn event's dirty scope stays
    // local, so the sweep exercises the incremental path, not just the
    // full-restart fallback (dense G(n,p) scopes swallow the graph)
    let base = Family::Grid.generate(36, 7);
    let k = 2;
    let mut total_events = 0usize;
    let mut incremental = 0usize;
    for i in 0..cfg.schedules as u64 {
        let sched = gen_schedule(&base, &cfg, cfg.seed + i);
        total_events += sched.event_count();
        let outcomes = run_and_check(&base, &sched, k);
        incremental += outcomes.iter().filter(|o| !o.full_restart).count();
    }
    assert!(total_events > 0, "the generator produced no churn at all");
    assert!(
        incremental > 0,
        "no schedule ever took the incremental path — the scope analysis is dead code"
    );
}

/// Incremental re-fixup produces the same forest as the full-restart
/// path, on every epoch of every schedule it fires on.
#[test]
fn incremental_refixup_matches_full_restart() {
    let cfg = ChaosConfig {
        schedules: 12,
        epochs: 3,
        events_per_epoch: 2,
        ..ChaosConfig::default()
    };
    let base = Family::Grid.generate(36, 11);
    let k = 2;
    let exec = Executor::Sync;
    let config = EngineConfig::default().with_threads(1);
    let mut compared = 0usize;
    for i in 0..cfg.schedules as u64 {
        let sched = gen_schedule(&base, &cfg, cfg.seed ^ (i << 8));
        let outcomes = run_fragment_epochs(&base, &sched.plan, k, &exec, config)
            .expect("generated schedules apply by construction");
        for (e, o) in outcomes.iter().enumerate().skip(1) {
            let full = run_simple_mst_configured(&o.graph, k, &exec, config);
            assert_eq!(
                canonical(&o.fragments),
                canonical(&full),
                "seed {} epoch {e}: incremental and full restart disagree",
                sched.seed
            );
            if !o.full_restart {
                compared += 1;
                assert!(
                    o.scope < o.graph.node_count(),
                    "seed {} epoch {e}: incremental claim with full scope",
                    sched.seed
                );
            }
        }
    }
    assert!(compared > 0, "no incremental repair was ever exercised");
}

/// Replays a schedule's churn and reports whether the injected bug
/// fires: the (deliberately broken) recovery logic under test treats
/// `NodeJoin` as a no-op, so any cleanly-applying schedule containing a
/// join is a failure. Schedules that stop applying after shrinking do
/// **not** reproduce — the shrinker has to navigate event dependencies.
fn injected_join_bug_fires(base: &Graph, sched: &ChaosSchedule) -> bool {
    let mut cur = base.clone();
    let mut saw_join = false;
    for ep in &sched.plan.epochs {
        match apply_churn(&cur, &ep.events) {
            Ok((next, _)) => cur = next,
            Err(_) => return false,
        }
        saw_join |= ep
            .events
            .iter()
            .any(|e| matches!(e, ChurnEvent::NodeJoin { .. }));
    }
    saw_join
}

/// The acceptance smoke test: a failing ~100-event schedule shrinks to
/// ≤ 5 events (here: the single culprit join), with the transient-fault
/// knobs shed along the way.
#[test]
fn shrinker_reduces_failing_100_event_schedule_to_five_events() {
    let base = Family::Gnp.generate(18, 5);
    let cfg = ChaosConfig {
        epochs: 40,
        events_per_epoch: 3,
        ..ChaosConfig::default()
    };
    let sched = gen_schedule(&base, &cfg, 0xFA11);
    assert!(
        sched.event_count() >= 100,
        "need a ≥100-event schedule to shrink, got {}",
        sched.event_count()
    );
    assert!(
        injected_join_bug_fires(&base, &sched),
        "the injected bug must fire on the full schedule"
    );
    let report = shrink(&sched, |s| injected_join_bug_fires(&base, s), 4_000);
    assert_eq!(report.events_before, sched.event_count());
    assert!(
        report.events_after <= 5,
        "shrinker left {} events (from {}), want ≤ 5",
        report.events_after,
        report.events_before
    );
    assert!(
        injected_join_bug_fires(&base, &report.schedule),
        "the minimal schedule no longer reproduces"
    );
    // every surviving event is load-bearing for the repro
    assert!(report
        .schedule
        .plan
        .epochs
        .iter()
        .flat_map(|e| &e.events)
        .any(|e| matches!(e, ChurnEvent::NodeJoin { .. })));
    assert_eq!(
        report.schedule.plan.drop_prob, 0.0,
        "transient knobs should be shed from the minimal repro"
    );
}

/// Weight-only churn on a tree: `DOMPartition_1` re-fixup certifies the
/// old clustering as a no-op (scope 0), and the carried-over clustering
/// still satisfies the paper's cluster invariants on the new topology —
/// and equals a fresh run, since the partition never reads weights.
#[test]
fn partition1_weight_only_churn_is_a_certified_noop() {
    let cfg = ChaosConfig {
        epochs: 3,
        events_per_epoch: 2,
        ..ChaosConfig::default()
    };
    let k = 3;
    for seed in 0..8u64 {
        let base = Family::RandomTree.generate(50, seed + 1);
        let sched = gen_schedule_with_mix(&base, &cfg, 0xBEE5 + seed, EventMix::WeightOnly);
        let (nodes, _) = run_partition1(&base, NodeId(0), k);
        let mut clusters: Vec<u64> = nodes.iter().map(|x| x.cluster).collect();
        let mut centers: Vec<bool> = nodes.iter().map(|x| x.is_center).collect();
        let mut cur = base.clone();
        for (i, ep) in sched.plan.epochs.iter().enumerate() {
            let (next, _) = apply_churn(&cur, &ep.events).expect("weight-only churn applies");
            assert_eq!(
                next.node_count(),
                cur.node_count(),
                "weight-only churn moved nodes"
            );
            let fix = refixup_partition1(
                &clusters,
                &centers,
                &next,
                &ep.events,
                NodeId(0),
                k,
                i as u64,
            );
            assert_eq!(
                fix.scope, 0,
                "seed {seed} epoch {i}: weight-only epoch was not a no-op"
            );
            assert!(!fix.full_restart, "seed {seed} epoch {i}");
            // the certified no-op equals a fresh run on the new topology
            let (fresh, _) = run_partition1(&next, NodeId(0), k);
            let fresh_clusters: Vec<u64> = fresh.iter().map(|x| x.cluster).collect();
            assert_eq!(fix.clusters, fresh_clusters, "seed {seed} epoch {i}");
            // and still satisfies the cluster invariants on the new graph
            let id_to_node: HashMap<u64, NodeId> =
                next.nodes().map(|v| (next.id_of(v), v)).collect();
            let mut members: HashMap<u64, Vec<NodeId>> = HashMap::new();
            for v in next.nodes() {
                members.entry(fix.clusters[v.0]).or_default().push(v);
            }
            let cl: Vec<(NodeId, Vec<NodeId>)> = members
                .iter()
                .map(|(cid, m)| (id_to_node[cid], m.clone()))
                .collect();
            let clustering = clusters_to_clustering(next.node_count(), &cl);
            check_clusters(&next, &clustering, 1, 4 * (k as u32) * (k as u32))
                .unwrap_or_else(|e| panic!("seed {seed} epoch {i}: {e}"));
            clusters = fix.clusters;
            centers = fix.centers;
            cur = next;
        }
    }
}

/// Nightly sweep (`cargo test --test chaos -- --ignored`): a bigger
/// budget from `KDOM_CHAOS_*`, and on failure the minimal reproducing
/// schedule plus a JSONL trace of it are written to `KDOM_CHAOS_DIR`.
#[test]
#[ignore = "nightly budget; run with --ignored (KDOM_CHAOS_* configures it)"]
fn chaos_nightly() {
    let cfg = ChaosConfig::from_env();
    // Resolve and create the artifact directory *before* any schedule
    // runs: an uncreatable KDOM_CHAOS_DIR used to surface only after a
    // failure had already been found and minimized — losing the repro
    // the whole run existed to capture.
    let dir = cfg.artifact_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join("kdom-chaos")
            .display()
            .to_string()
    });
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create KDOM_CHAOS_DIR {dir:?}: {e}"));
    let base = Family::Gnp.generate(32, cfg.seed ^ 0x9E37);
    let k = 2;
    for i in 0..cfg.schedules as u64 {
        let sched = gen_schedule(&base, &cfg, cfg.seed + i);
        let outcome = std::panic::catch_unwind(|| run_and_check(&base, &sched, k));
        let Err(panic) = outcome else { continue };
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic".into());
        // shrink against the real predicate: does the sweep still fail?
        let report = shrink(
            &sched,
            |s| std::panic::catch_unwind(|| run_and_check(&base, s, k)).is_err(),
            2_000,
        );
        // Artifacts land via tmp + rename so an interrupted run (CI
        // timeout, OOM kill mid-write) leaves either the complete file
        // or nothing — never a truncated repro that replays differently.
        let seed_path = format!("{dir}/minimal-seed.txt");
        let seed_tmp = format!("{seed_path}.tmp");
        std::fs::write(
            &seed_tmp,
            format!(
                "base: Gnp n=32 seed={:#x}\nfailure: {msg}\n{}\nminimal plan: {:#?}\n",
                cfg.seed ^ 0x9E37,
                report.describe(),
                report.schedule.plan
            ),
        )
        .expect("write minimal seed");
        std::fs::rename(&seed_tmp, &seed_path).expect("publish minimal seed");
        // replay the minimal schedule with tracing on for the artifact;
        // the trace streams into the tmp path and is published whole
        // (KDOM_TRACE appends, so a stale file from an earlier failure
        // would otherwise pollute the new repro)
        let trace_path = format!("{dir}/minimal-trace.jsonl");
        let trace_tmp = format!("{trace_path}.tmp");
        let _ = std::fs::remove_file(&trace_tmp);
        std::env::set_var("KDOM_TRACE", &trace_tmp);
        let _ = std::panic::catch_unwind(|| run_and_check(&base, &report.schedule, k));
        std::env::remove_var("KDOM_TRACE");
        std::fs::rename(&trace_tmp, &trace_path).expect("publish minimal trace");
        panic!(
            "schedule seed {} failed ({msg}); minimal repro ({} events) at {seed_path}, trace at {trace_path}",
            sched.seed, report.events_after
        );
    }
}
