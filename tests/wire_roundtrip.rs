//! Seeded encode/decode round-trip coverage for every wire message type
//! in the repo. (Seeded-loop style, like `proptest_substrates`.)
//!
//! For each type the property is threefold: `decode(encode(x)) == x`,
//! the counting pass agrees with the materialised frame
//! (`encoded_bits == size_bits == frame.bits()`), and decoding consumes
//! the frame exactly (no leftover bits) — checked by
//! [`kdom::congest::wire::round_trip`], which also re-encodes the decoded
//! value and compares frames bit for bit.

use kdom::congest::wire::{round_trip, Wire};
use kdom::congest::Message;
use kdom::core::dist::bfs::BfsMsg;
use kdom::core::dist::coloring::BdMsg;
use kdom::core::dist::diamdom::{Chosen, DdMsg};
use kdom::core::dist::election::Best;
use kdom::core::dist::fragments::FrMsg;
use kdom::core::dist::partition1::P1Msg;
use kdom::core::dist::treedp::DpMsg;
use kdom::mst::pipeline::{EdgeDesc, PlMsg};
use kdom_rng::StdRng;

const CASES: usize = 256;

/// A uniform CONGEST word: the full 48-bit id/weight range.
fn word(rng: &mut StdRng) -> u64 {
    rng.next_u64() & ((1 << 48) - 1)
}

fn opt_word(rng: &mut StdRng) -> Option<u64> {
    rng.random_bool(0.5).then(|| word(rng))
}

fn opt_u32(rng: &mut StdRng) -> Option<u32> {
    rng.random_bool(0.5).then(|| rng.next_u64() as u32)
}

/// A partition aggregate slot: `u64::MAX` (absent) or a 50-bit payload.
fn slot(rng: &mut StdRng) -> u64 {
    if rng.random_bool(0.25) {
        u64::MAX
    } else {
        rng.next_u64() & ((1 << 50) - 1)
    }
}

/// Drives `gen` through `CASES` seeded draws and checks the round-trip
/// property plus the `size_bits`-derivation contract on each.
fn check<M, F>(seed: u64, mut gen: F)
where
    M: Message,
    F: FnMut(&mut StdRng) -> M,
{
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..CASES {
        let msg = gen(&mut rng);
        if let Err(e) = round_trip(&msg) {
            panic!("case {case}: {msg:?}: {e}");
        }
        assert_eq!(
            msg.size_bits(),
            msg.encoded_bits(),
            "case {case}: {msg:?}: size_bits must be the encoded length"
        );
        assert_eq!(
            msg.to_frame().bits(),
            msg.encoded_bits(),
            "case {case}: {msg:?}: counting pass diverged from the frame"
        );
    }
}

#[test]
fn bfs_round_trips() {
    check(0x31E_0001, |rng| {
        if rng.random_bool(0.5) {
            BfsMsg::Dist(rng.next_u64() as u32)
        } else {
            BfsMsg::Child
        }
    });
}

#[test]
fn election_round_trips() {
    check(0x31E_0002, |rng| Best(word(rng)));
    // the election pin: exactly one CONGEST word on the wire
    assert_eq!(Best(0).encoded_bits(), 48);
}

#[test]
fn coloring_round_trips() {
    check(0x31E_0003, |rng| match rng.random_range(0u32..5) {
        0 => BdMsg::Color(word(rng)),
        1 => BdMsg::Join,
        2 => BdMsg::Choose,
        3 => BdMsg::Select,
        _ => BdMsg::NewDom,
    });
}

#[test]
fn diamdom_round_trips() {
    let chosen = |rng: &mut StdRng| {
        if rng.random_bool(0.5) {
            Chosen::RootOnly
        } else {
            Chosen::Level(rng.next_u64() as u16)
        }
    };
    check(0x31E_0004, |rng| match rng.random_range(0u32..6) {
        0 => DdMsg::Depth(rng.next_u64() as u32),
        1 => DdMsg::EchoMax(rng.next_u64() as u32),
        2 => DdMsg::MInfo {
            m: rng.next_u64() as u32,
            t1: word(rng),
        },
        3 => DdMsg::Census {
            l: rng.next_u64() as u16,
            count: rng.next_u64() as u32,
        },
        4 => DdMsg::Decision(chosen(rng)),
        _ => DdMsg::Claim(word(rng)),
    });
}

#[test]
fn fragments_round_trips() {
    check(0x31E_0005, |rng| match rng.random_range(0u32..7) {
        0 => FrMsg::Probe {
            hops: rng.next_u64() as u32,
            root_id: word(rng),
        },
        1 => FrMsg::EchoDeep(rng.random_bool(0.5)),
        2 => FrMsg::Activate,
        3 => FrMsg::FragId(word(rng)),
        4 => FrMsg::MwoeUp(opt_word(rng)),
        5 => FrMsg::Transfer,
        _ => FrMsg::Connect(word(rng)),
    });
}

#[test]
fn treedp_round_trips() {
    check(0x31E_0006, |rng| match rng.random_range(0u32..3) {
        0 => DpMsg::Up {
            need: opt_u32(rng),
            have: opt_u32(rng),
            height: rng.next_u64() as u32,
        },
        1 => DpMsg::Start { t: word(rng) },
        _ => DpMsg::Claim(word(rng)),
    });
}

#[test]
fn partition1_round_trips() {
    let seg = |rng: &mut StdRng| rng.random_range(0u64..=36) as u8;
    check(0x31E_0007, |rng| match rng.random_range(0u32..5) {
        0 => P1Msg::Xchg(word(rng)),
        1 => P1Msg::Down {
            seg: seg(rng),
            a: slot(rng),
        },
        2 => P1Msg::Up {
            seg: seg(rng),
            a: slot(rng),
            b: slot(rng),
            c: slot(rng),
        },
        3 => P1Msg::Cross {
            seg: seg(rng),
            cluster: word(rng),
            a: slot(rng),
        },
        _ => P1Msg::Wave {
            cluster: word(rng),
            depth: rng.next_u64() as u32,
        },
    });
}

#[test]
fn pipeline_round_trips() {
    check(0x31E_0008, |rng| match rng.random_range(0u32..5) {
        0 => PlMsg::ClusterId(word(rng)),
        1 => PlMsg::Edge(EdgeDesc {
            w: word(rng),
            a: word(rng),
            b: word(rng),
        }),
        2 => PlMsg::Done,
        3 => PlMsg::SEdge(word(rng)),
        _ => PlMsg::SDone,
    });
    // the theorem pin: a full edge description is exactly three words,
    // with no tag headroom — the length *is* the discriminant
    assert_eq!(
        PlMsg::Edge(EdgeDesc { w: 0, a: 0, b: 0 }).encoded_bits(),
        144
    );
}
