//! Seeded encode/decode round-trip coverage for every wire message type
//! in the repo. (Seeded-loop style, like `proptest_substrates`.)
//!
//! For each type the property is threefold: `decode(encode(x)) == x`,
//! the counting pass agrees with the materialised frame
//! (`encoded_bits == size_bits == frame.bits()`), and decoding consumes
//! the frame exactly (no leftover bits) — checked by
//! [`kdom::congest::wire::round_trip`], which also re-encodes the decoded
//! value and compares frames bit for bit.

use kdom::congest::transport::{frame_to_bytes, read_frame};
use kdom::congest::wire::{
    decode_from, encode_to, round_trip, BitReader, BitWriter, Wire, WireError,
};
use kdom::congest::Message;
use kdom::core::dist::bfs::BfsMsg;
use kdom::core::dist::coloring::BdMsg;
use kdom::core::dist::diamdom::{Chosen, DdMsg};
use kdom::core::dist::election::Best;
use kdom::core::dist::fragments::FrMsg;
use kdom::core::dist::partition1::P1Msg;
use kdom::core::dist::treedp::DpMsg;
use kdom::mst::pipeline::{EdgeDesc, PlMsg};
use kdom_rng::StdRng;

const CASES: usize = 256;

/// A uniform CONGEST word: the full 48-bit id/weight range.
fn word(rng: &mut StdRng) -> u64 {
    rng.next_u64() & ((1 << 48) - 1)
}

fn opt_word(rng: &mut StdRng) -> Option<u64> {
    rng.random_bool(0.5).then(|| word(rng))
}

fn opt_u32(rng: &mut StdRng) -> Option<u32> {
    rng.random_bool(0.5).then(|| rng.next_u64() as u32)
}

/// A partition aggregate slot: `u64::MAX` (absent) or a 50-bit payload.
fn slot(rng: &mut StdRng) -> u64 {
    if rng.random_bool(0.25) {
        u64::MAX
    } else {
        rng.next_u64() & ((1 << 50) - 1)
    }
}

/// Drives `gen` through `CASES` seeded draws and checks the round-trip
/// property plus the `size_bits`-derivation contract on each.
fn check<M, F>(seed: u64, mut gen: F)
where
    M: Message,
    F: FnMut(&mut StdRng) -> M,
{
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..CASES {
        let msg = gen(&mut rng);
        if let Err(e) = round_trip(&msg) {
            panic!("case {case}: {msg:?}: {e}");
        }
        assert_eq!(
            msg.size_bits(),
            msg.encoded_bits(),
            "case {case}: {msg:?}: size_bits must be the encoded length"
        );
        assert_eq!(
            msg.to_frame().bits(),
            msg.encoded_bits(),
            "case {case}: {msg:?}: counting pass diverged from the frame"
        );
    }
}

#[test]
fn bfs_round_trips() {
    check(0x31E_0001, |rng| {
        if rng.random_bool(0.5) {
            BfsMsg::Dist(rng.next_u64() as u32)
        } else {
            BfsMsg::Child
        }
    });
}

#[test]
fn election_round_trips() {
    check(0x31E_0002, |rng| Best(word(rng)));
    // the election pin: exactly one CONGEST word on the wire
    assert_eq!(Best(0).encoded_bits(), 48);
}

#[test]
fn coloring_round_trips() {
    check(0x31E_0003, |rng| match rng.random_range(0u32..5) {
        0 => BdMsg::Color(word(rng)),
        1 => BdMsg::Join,
        2 => BdMsg::Choose,
        3 => BdMsg::Select,
        _ => BdMsg::NewDom,
    });
}

#[test]
fn diamdom_round_trips() {
    let chosen = |rng: &mut StdRng| {
        if rng.random_bool(0.5) {
            Chosen::RootOnly
        } else {
            Chosen::Level(rng.next_u64() as u16)
        }
    };
    check(0x31E_0004, |rng| match rng.random_range(0u32..6) {
        0 => DdMsg::Depth(rng.next_u64() as u32),
        1 => DdMsg::EchoMax(rng.next_u64() as u32),
        2 => DdMsg::MInfo {
            m: rng.next_u64() as u32,
            t1: word(rng),
        },
        3 => DdMsg::Census {
            l: rng.next_u64() as u16,
            count: rng.next_u64() as u32,
        },
        4 => DdMsg::Decision(chosen(rng)),
        _ => DdMsg::Claim(word(rng)),
    });
}

/// A seeded fragment-stage message — the type that rides the socket
/// transport in `kdom-shard`, so the corruption sweeps below reuse it.
fn fr_msg(rng: &mut StdRng) -> FrMsg {
    match rng.random_range(0u32..7) {
        0 => FrMsg::Probe {
            hops: rng.next_u64() as u32,
            root_id: word(rng),
        },
        1 => FrMsg::EchoDeep(rng.random_bool(0.5)),
        2 => FrMsg::Activate,
        3 => FrMsg::FragId(word(rng)),
        4 => FrMsg::MwoeUp(opt_word(rng)),
        5 => FrMsg::Transfer,
        _ => FrMsg::Connect(word(rng)),
    }
}

#[test]
fn fragments_round_trips() {
    check(0x31E_0005, fr_msg);
}

#[test]
fn treedp_round_trips() {
    check(0x31E_0006, |rng| match rng.random_range(0u32..3) {
        0 => DpMsg::Up {
            need: opt_u32(rng),
            have: opt_u32(rng),
            height: rng.next_u64() as u32,
        },
        1 => DpMsg::Start { t: word(rng) },
        _ => DpMsg::Claim(word(rng)),
    });
}

#[test]
fn partition1_round_trips() {
    let seg = |rng: &mut StdRng| rng.random_range(0u64..=36) as u8;
    check(0x31E_0007, |rng| match rng.random_range(0u32..5) {
        0 => P1Msg::Xchg(word(rng)),
        1 => P1Msg::Down {
            seg: seg(rng),
            a: slot(rng),
        },
        2 => P1Msg::Up {
            seg: seg(rng),
            a: slot(rng),
            b: slot(rng),
            c: slot(rng),
        },
        3 => P1Msg::Cross {
            seg: seg(rng),
            cluster: word(rng),
            a: slot(rng),
        },
        _ => P1Msg::Wave {
            cluster: word(rng),
            depth: rng.next_u64() as u32,
        },
    });
}

#[test]
fn pipeline_round_trips() {
    check(0x31E_0008, |rng| match rng.random_range(0u32..5) {
        0 => PlMsg::ClusterId(word(rng)),
        1 => PlMsg::Edge(EdgeDesc {
            w: word(rng),
            a: word(rng),
            b: word(rng),
        }),
        2 => PlMsg::Done,
        3 => PlMsg::SEdge(word(rng)),
        _ => PlMsg::SDone,
    });
    // the theorem pin: a full edge description is exactly three words,
    // with no tag headroom — the length *is* the discriminant
    assert_eq!(
        PlMsg::Edge(EdgeDesc { w: 0, a: 0, b: 0 }).encoded_bits(),
        144
    );
}

// ---------------------------------------------------------------------
// Corrupted frames. The decoder's contract on hostile input is a typed
// `WireError` — never a panic — and on the rare corruption that still
// decodes, canonicality: the value must account for every consumed bit.
// ---------------------------------------------------------------------

/// Drives `gen` through seeded draws and attacks each encoding three
/// ways: truncation to a random bit prefix, a single random bit flip,
/// and random trailing garbage. Every attack must yield `Ok` or a typed
/// [`WireError`]; an `Ok` must be canonical (`encoded_bits` equals the
/// frame length, since [`decode_from`] enforces full consumption).
fn corrupt_sweep<M, F>(seed: u64, mut gen: F)
where
    M: Message,
    F: FnMut(&mut StdRng) -> M,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut words = Vec::new();
    for case in 0..CASES {
        let msg = gen(&mut rng);
        let bits = encode_to(&msg, &mut words);

        // truncation: every strict bit prefix is either rejected or a
        // complete shorter message
        if bits > 0 {
            let cut = rng.next_u64() % bits;
            let prefix = &words[..cut.div_ceil(64) as usize];
            if let Ok(v) = decode_from::<M>(prefix, cut) {
                assert_eq!(
                    v.encoded_bits(),
                    cut,
                    "case {case}: truncated {msg:?} decoded non-canonically to {v:?}"
                );
            }
        }

        // single bit flip somewhere in the payload
        if bits > 0 {
            let flip = rng.next_u64() % bits;
            let mut mutated = words.clone();
            mutated[(flip / 64) as usize] ^= 1 << (flip % 64);
            if let Ok(v) = decode_from::<M>(&mutated, bits) {
                assert_eq!(
                    v.encoded_bits(),
                    bits,
                    "case {case}: bit-flipped {msg:?} decoded non-canonically to {v:?}"
                );
            }
        }

        // trailing garbage: 1..=64 random extra bits
        let extra = 1 + rng.next_u64() % 64;
        let total = bits + extra;
        let mut extended = words.clone();
        extended.resize(total.div_ceil(64) as usize, 0);
        for b in bits..total {
            if rng.random_bool(0.5) {
                extended[(b / 64) as usize] |= 1 << (b % 64);
            }
        }
        if let Ok(v) = decode_from::<M>(&extended, total) {
            assert_eq!(
                v.encoded_bits(),
                total,
                "case {case}: garbage-extended {msg:?} decoded non-canonically to {v:?}"
            );
        }
    }
}

#[test]
fn corrupted_fragment_frames_fail_typed() {
    corrupt_sweep(0x31E_1001, fr_msg);
}

#[test]
fn corrupted_treedp_frames_fail_typed() {
    corrupt_sweep(0x31E_1002, |rng| match rng.random_range(0u32..3) {
        0 => DpMsg::Up {
            need: opt_u32(rng),
            have: opt_u32(rng),
            height: rng.next_u64() as u32,
        },
        1 => DpMsg::Start { t: word(rng) },
        _ => DpMsg::Claim(word(rng)),
    });
}

#[test]
fn corrupted_pipeline_frames_fail_typed() {
    // PlMsg is length-delimited — the attack that matters most here is
    // truncation/extension, which lands on a length matching no variant
    corrupt_sweep(0x31E_1003, |rng| match rng.random_range(0u32..5) {
        0 => PlMsg::ClusterId(word(rng)),
        1 => PlMsg::Edge(EdgeDesc {
            w: word(rng),
            a: word(rng),
            b: word(rng),
        }),
        2 => PlMsg::Done,
        3 => PlMsg::SEdge(word(rng)),
        _ => PlMsg::SDone,
    });
}

#[test]
fn trailing_garbage_on_a_tag_delimited_frame_is_exactly_leftover() {
    // FrMsg is tag-delimited, so appended bits can never be absorbed
    // into the value: the decoder consumes the original message and the
    // residue is reported bit-for-bit
    let mut rng = StdRng::seed_from_u64(0x31E_1004);
    let mut words = Vec::new();
    for _ in 0..CASES {
        let msg = fr_msg(&mut rng);
        let bits = encode_to(&msg, &mut words);
        let extra = 1 + rng.next_u64() % 64;
        let total = bits + extra;
        let mut extended = words.clone();
        extended.resize(total.div_ceil(64) as usize, 0);
        assert_eq!(
            decode_from::<FrMsg>(&extended, total),
            Err(WireError::Leftover { bits: extra })
        );
    }
}

#[test]
fn pulling_past_the_end_is_a_typed_overrun() {
    let mut w = BitWriter::new();
    w.push(0x2A, 10);
    let frame = w.finish();
    let mut r = BitReader::new(&frame);
    assert_eq!(r.pull(6).unwrap(), 0x2A & 0x3F);
    assert_eq!(
        r.pull(48),
        Err(WireError::Overrun {
            at: 6,
            want: 48,
            len: 10
        })
    );
    // the failed pull must not advance the cursor: the remaining bits
    // are still readable
    assert_eq!(r.remaining(), 4);
    assert_eq!(r.pull(4).unwrap(), 0x2A >> 6);
}

#[test]
fn word_count_that_disagrees_with_the_bit_length_is_rejected() {
    let mut words = Vec::new();
    let bits = encode_to(&FrMsg::Activate, &mut words);
    // one spare word: the (words, bits) pair no longer describes a frame
    words.push(0);
    assert!(matches!(
        decode_from::<FrMsg>(&words, bits),
        Err(WireError::BadLength {
            context: "frame word count",
            ..
        })
    ));
}

// ---------------------------------------------------------------------
// Socket framing. The transport moves these same frames as
// length-prefixed byte streams; reassembly across arbitrary read
// boundaries must be exact, and corrupted streams must surface as typed
// `io::Error`s before any decode runs.
// ---------------------------------------------------------------------

use std::io::{self, Read};

/// A reader that yields at most a few bytes per `read` call, cycling
/// the chunk size through 1..=7 — every frame header and payload word
/// is split across calls at some point.
struct Dribble<'a> {
    data: &'a [u8],
    pos: usize,
    step: usize,
}

impl Read for Dribble<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.step.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        self.step = self.step % 7 + 1;
        Ok(n)
    }
}

#[test]
fn socket_frames_reassemble_across_arbitrary_read_boundaries() {
    let mut rng = StdRng::seed_from_u64(0x31E_1005);
    let mut stream = Vec::new();
    let mut sent = Vec::new();
    let mut words = Vec::new();
    let mut frame = Vec::new();
    for _ in 0..64 {
        let msg = fr_msg(&mut rng);
        let bits = encode_to(&msg, &mut words);
        // frame_to_bytes clears its output (per-send buffer semantics),
        // so concatenate the stream by hand
        frame_to_bytes(&words, bits, &mut frame);
        stream.extend_from_slice(&frame);
        sent.push((msg, words.clone(), bits));
    }
    let mut r = Dribble {
        data: &stream,
        pos: 0,
        step: 1,
    };
    let mut got = Vec::new();
    for (msg, want_words, want_bits) in &sent {
        let bits = read_frame(&mut r, &mut got).expect("reassemble frame");
        assert_eq!(bits, *want_bits);
        assert_eq!(&got, want_words, "payload words diverged for {msg:?}");
        assert_eq!(&decode_from::<FrMsg>(&got, bits).unwrap(), msg);
    }
    assert_eq!(r.pos, stream.len(), "stream fully consumed");
}

#[test]
fn truncated_socket_streams_are_unexpected_eof() {
    let mut words = Vec::new();
    let bits = encode_to(&FrMsg::Connect(42), &mut words);
    let mut stream = Vec::new();
    frame_to_bytes(&words, bits, &mut stream);
    let mut scratch = Vec::new();
    // cut at every strict prefix: mid-header and mid-payload alike
    for cut in 0..stream.len() {
        let mut r = Dribble {
            data: &stream[..cut],
            pos: 0,
            step: 3,
        };
        let err = read_frame(&mut r, &mut scratch).expect_err("truncated stream");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
    }
}

#[test]
fn corrupted_socket_bytes_are_typed_not_panics() {
    let mut rng = StdRng::seed_from_u64(0x31E_1006);
    let mut words = Vec::new();
    let bits = encode_to(&FrMsg::FragId(0xBEEF), &mut words);
    let mut stream = Vec::new();
    frame_to_bytes(&words, bits, &mut stream);
    let mut scratch = Vec::new();
    for _ in 0..CASES {
        let mut mutated = stream.clone();
        let at = (rng.next_u64() as usize) % mutated.len();
        mutated[at] ^= 1 << (rng.next_u64() % 8);
        let mut r = Dribble {
            data: &mutated,
            pos: 0,
            step: 5,
        };
        match read_frame(&mut r, &mut scratch) {
            // header survived; the payload corruption must then fail
            // decode as a typed WireError, or decode canonically
            Ok(got_bits) => {
                if let Ok(v) = decode_from::<FrMsg>(&scratch, got_bits) {
                    assert_eq!(v.encoded_bits(), got_bits);
                }
            }
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                ),
                "unexpected io error kind {e:?}"
            ),
        }
    }
}
