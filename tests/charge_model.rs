//! Ties the charged-round model to measured executions: the constants
//! the cluster engine charges must match what the per-node protocols
//! actually take where both exist.

use kdom::congest::Port;
use kdom::core::cluster::{ClusterEngine, ClusterState};
use kdom::core::dist::coloring::{BalancedConfig, BalancedNode};
use kdom::graph::generators::{random_tree, GenConfig};
use kdom::graph::{Graph, NodeId, RootedTree};

fn run_distributed_balanced(g: &Graph) -> u64 {
    let t = RootedTree::from_graph(g, NodeId(0));
    let port_to = |v: NodeId, to: NodeId| {
        Port(
            g.neighbors(v)
                .iter()
                .position(|a| a.to == to)
                .expect("tree edge"),
        )
    };
    let nodes: Vec<BalancedNode> = (0..g.node_count())
        .map(|v| {
            let v = NodeId(v);
            BalancedNode::new(BalancedConfig {
                parent: t.parent(v).map(|p| port_to(v, p)),
                children: t.children(v).iter().map(|&c| port_to(v, c)).collect(),
                id_bits: 48,
            })
        })
        .collect();
    let (_, report) = kdom_congest::run_protocol(g, nodes, 10_000).expect("quiesces");
    report.rounds
}

/// On the base tree (radius-0 clusters) one charged virtual round equals
/// one real round, so the engine's virtual-round count for a
/// `BalancedDOM` step must match the measured per-node protocol within a
/// small constant.
#[test]
fn virtual_rounds_match_measured_balanced_dom() {
    for seed in [1u64, 7, 23] {
        let g = random_tree(&GenConfig::with_seed(300, seed));
        let measured = run_distributed_balanced(&g);

        let nodes: Vec<NodeId> = g.nodes().collect();
        let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        let mut eng = ClusterEngine::new(&g, nodes, &edges);
        let parts = eng.in_state(ClusterState::Forest);
        let step = eng.balanced_step(&parts);
        assert_eq!(step.max_radius_before, 0, "base tree: radius-0 clusters");
        let charged = u64::from(step.virtual_rounds);

        let diff = charged.abs_diff(measured);
        assert!(
            diff <= 4,
            "seed {seed}: charged {charged} vs measured {measured} — the model drifted"
        );
    }
}

/// The charged rounds of a full partition dominate the virtual-round
/// count times 1 (radius ≥ 0), i.e. the model never under-charges its
/// own virtual rounds.
#[test]
fn charges_dominate_virtual_rounds() {
    use kdom::core::partition::dom_partition;
    for (n, k) in [(200usize, 3usize), (500, 9)] {
        let g = random_tree(&GenConfig::with_seed(n, 4));
        let nodes: Vec<NodeId> = g.nodes().collect();
        let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        let res = dom_partition(&g, nodes, &edges, k);
        assert!(res.charge.rounds >= res.charge.virtual_rounds);
    }
}
