//! Fault-injection integration suite: every protocol in the repo must
//! survive a hostile network when run over the reliable α transport.
//!
//! Each test drives an **unmodified** protocol through synchronizer α
//! with seeded link faults (≥ 20% per-link drop probability, plus
//! duplication and extra delay) and asserts the outputs are identical to
//! the fault-free synchronous execution — the recovery layer makes the
//! reliability assumption a toggle, not a requirement. Crash-stop
//! scenarios compare against references computed on the surviving
//! component, and budget exhaustion must produce a structured diagnosis
//! naming the stuck nodes, never a bare hang.

use kdom::congest::{
    run_protocol, run_protocol_alpha_reliable, AlphaReport, AlphaSimulator, FaultPlan, Message,
    NodeCtx, Outbox, Protocol, ReliableConfig, SimError, Simulator,
};
use kdom::core::dist::bfs::BfsNode;
use kdom::core::dist::election::ElectionNode;
use kdom::core::dist::executor::Executor;
use kdom::core::dist::fastdom::{
    fast_dom_g_distributed, fast_dom_g_distributed_on, fast_dom_t_distributed,
    fast_dom_t_distributed_on,
};
use kdom::core::dist::fragments::{run_simple_mst, run_simple_mst_on};
use kdom::core::fastdom::WithinCluster;
use kdom::core::verify::check_fastdom_output;
use kdom::graph::generators::Family;
use kdom::graph::mst_ref::kruskal;
use kdom::graph::properties::bfs_distances;
use kdom::graph::{Graph, NodeId};
use kdom::mst::pipeline::{PipelineConfig, PipelineNode};

/// The headline adversary: 30% of transmissions dropped, 10% duplicated,
/// extra delay on top of the random base delays.
fn heavy_loss(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .drop_prob(0.3)
        .dup_prob(0.1)
        .max_extra_delay(3)
}

/// BFS completes under 30% loss and reproduces the exact layer structure.
#[test]
fn bfs_survives_heavy_loss() {
    for (fam, seed) in [
        (Family::Gnp, 3u64),
        (Family::Grid, 4),
        (Family::RandomTree, 5),
    ] {
        let g = fam.generate(36, seed);
        let nodes = (0..g.node_count()).map(|v| BfsNode::new(v == 0)).collect();
        let (nodes, report) =
            run_protocol_alpha_reliable(&g, nodes, seed, 3, &heavy_loss(seed ^ 0xF00D), 1_000_000)
                .unwrap();
        let want = bfs_distances(&g, NodeId(0));
        for v in 0..g.node_count() {
            assert_eq!(nodes[v].depth, Some(want[v]), "{fam} node {v}");
        }
        assert!(
            report.dropped_messages > 0,
            "{fam}: the adversary never fired"
        );
        assert!(report.retransmissions > 0, "{fam}: recovery never fired");
    }
}

/// Leader election under 30% loss still agrees on the global max id.
#[test]
fn election_survives_heavy_loss() {
    for seed in 10..14u64 {
        let g = Family::Gnp.generate(30, seed);
        let nodes = (0..g.node_count()).map(|_| ElectionNode::new()).collect();
        let (nodes, _) =
            run_protocol_alpha_reliable(&g, nodes, seed, 2, &heavy_loss(seed), 1_000_000).unwrap();
        let max_id = g.nodes().map(|v| g.id_of(v)).max().unwrap();
        assert!(nodes.iter().all(|n| n.best == max_id), "seed {seed}");
    }
}

/// SimpleMST — the hardest protocol here, driven entirely by exact round
/// numbers — produces the identical fragment forest under 25% loss.
#[test]
fn simple_mst_survives_heavy_loss() {
    for (fam, seed) in [(Family::Gnp, 21u64), (Family::Grid, 22)] {
        let g = fam.generate(30, seed);
        let k = 3;
        let exec = Executor::ReliableAlpha {
            seed,
            max_delay: 2,
            plan: FaultPlan::new(seed ^ 0xBEEF).drop_prob(0.25).dup_prob(0.05),
        };
        let faulty = run_simple_mst_on(&g, k, &exec);
        let clean = run_simple_mst(&g, k);
        let mut fe = faulty.tree_edges.clone();
        fe.sort_unstable();
        let mut ce = clean.tree_edges.clone();
        ce.sort_unstable();
        assert_eq!(fe, ce, "{fam}: tree edges differ");
        assert_eq!(faulty.roots, clean.roots, "{fam}: roots differ");
        assert_eq!(
            faulty.fragment_of, clean.fragment_of,
            "{fam}: partition differs"
        );
        assert!(
            faulty.report.dropped_messages > 0,
            "{fam}: the adversary never fired"
        );
    }
}

/// FastDOM_T end to end: the measured within-cluster stage runs over
/// reliable α at 20% loss and the final clustering is byte-identical.
#[test]
fn fastdom_t_survives_heavy_loss() {
    for seed in 30..33u64 {
        let g = Family::RandomTree.generate(60, seed);
        let k = 2;
        let exec = Executor::ReliableAlpha {
            seed,
            max_delay: 3,
            plan: FaultPlan::new(seed)
                .drop_prob(0.2)
                .dup_prob(0.1)
                .max_extra_delay(2),
        };
        for solver in [WithinCluster::OptimalDp, WithinCluster::DiamDom] {
            let faulty = fast_dom_t_distributed_on(&g, k, solver, &exec);
            let clean = fast_dom_t_distributed(&g, k, solver);
            assert_eq!(
                faulty.dominators(),
                clean.dominators(),
                "seed {seed} {solver:?}"
            );
            for v in g.nodes() {
                assert_eq!(
                    faulty.clustering.cluster_of(v),
                    clean.clustering.cluster_of(v),
                    "seed {seed} {solver:?} node {}",
                    v.0
                );
            }
            assert!(
                check_fastdom_output(&g, &faulty.clustering, k).is_ok(),
                "seed {seed}"
            );
            assert!(
                faulty.within_report.dropped_messages > 0,
                "adversary never fired"
            );
        }
    }
}

/// FastDOM_G end to end: both measured stages (SimpleMST + within-cluster)
/// run over reliable α at 25% loss; dominators and clustering match the
/// fault-free synchronous composition exactly.
#[test]
fn fastdom_g_survives_heavy_loss() {
    for seed in 40..43u64 {
        let g = Family::Gnp.generate(40, seed);
        let k = 2;
        let exec = Executor::ReliableAlpha {
            seed,
            max_delay: 2,
            plan: FaultPlan::new(seed ^ 0xD00D)
                .drop_prob(0.25)
                .dup_prob(0.05)
                .max_extra_delay(2),
        };
        let faulty = fast_dom_g_distributed_on(&g, k, WithinCluster::OptimalDp, &exec);
        let clean = fast_dom_g_distributed(&g, k, WithinCluster::OptimalDp);
        assert_eq!(faulty.dominators(), clean.dominators(), "seed {seed}");
        for v in g.nodes() {
            assert_eq!(
                faulty.clustering.cluster_of(v),
                clean.clustering.cluster_of(v),
                "seed {seed} node {}",
                v.0
            );
        }
        assert!(
            check_fastdom_output(&g, &faulty.clustering, k).is_ok(),
            "seed {seed}"
        );
        let dropped = faulty.within_report.dropped_messages;
        assert!(
            dropped > 0,
            "seed {seed}: adversary never fired in the within stage"
        );
    }
}

/// The MST pipeline (upcast with elimination) under 25% loss computes the
/// exact cluster-graph MST with zero stalls and zero order violations.
#[test]
fn pipeline_survives_heavy_loss() {
    for seed in 50..53u64 {
        let g = Family::Gnp.generate(28, seed);
        let (bfs, _) = kdom::core::dist::bfs::run_bfs(&g, NodeId(0));
        let mk_nodes = || -> Vec<PipelineNode> {
            bfs.iter()
                .enumerate()
                .map(|(v, b)| {
                    PipelineNode::new(PipelineConfig {
                        parent: b.parent,
                        children: b.children.clone(),
                        cluster: g.id_of(NodeId(v)),
                        eliminate: true,
                        barrier: false,
                    })
                })
                .collect()
        };
        let plan = FaultPlan::new(seed).drop_prob(0.25).dup_prob(0.1);
        let (nodes, _) =
            run_protocol_alpha_reliable(&g, mk_nodes(), seed, 2, &plan, 2_000_000).unwrap();
        let root = &nodes[0];
        let mut got = root.result.clone().expect("root computed the MST");
        got.sort_unstable();
        let mut want: Vec<u64> = kruskal(&g).iter().map(|&e| g.edge(e).weight).collect();
        want.sort_unstable();
        assert_eq!(got, want, "seed {seed}");
        assert_eq!(
            nodes.iter().map(|n| n.stalls).sum::<u64>(),
            0,
            "seed {seed}"
        );
        assert_eq!(
            nodes.iter().map(|n| n.order_violations).sum::<u64>(),
            0,
            "seed {seed}"
        );
    }
}

/// BFS distances on the induced subgraph that excludes `dead`, or `None`
/// when a survivor is unreachable without it.
fn survivor_distances(g: &Graph, root: NodeId, dead: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    dist[root.0] = Some(0u32);
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(u) = queue.pop_front() {
        for a in g.neighbors(u) {
            if a.to != dead && dist[a.to.0].is_none() {
                dist[a.to.0] = Some(dist[u.0].unwrap() + 1);
                queue.push_back(a.to);
            }
        }
    }
    dist
}

/// Picks a non-root node whose removal keeps every survivor reachable.
fn removable_node(g: &Graph, root: NodeId) -> (NodeId, Vec<Option<u32>>) {
    for v in g.nodes() {
        if v == root {
            continue;
        }
        let dist = survivor_distances(g, root, v);
        if g.nodes().all(|w| w == v || dist[w.0].is_some()) {
            return (v, dist);
        }
    }
    panic!("graph has no removable non-root node");
}

/// A node that crashes before round 0 simply degrades the topology: the
/// survivors compute the exact BFS tree of the induced subgraph, under
/// loss on top of the crash.
#[test]
fn crash_before_round_zero_bfs_on_survivors() {
    for seed in 60..63u64 {
        let g = Family::Gnp.generate(24, seed);
        let root = NodeId(0);
        let (dead, want) = removable_node(&g, root);
        let plan = FaultPlan::new(seed).drop_prob(0.2).crash(dead, 0);
        let nodes = (0..g.node_count()).map(|v| BfsNode::new(v == 0)).collect();
        let (nodes, _) = run_protocol_alpha_reliable(&g, nodes, seed, 2, &plan, 1_000_000).unwrap();
        for v in g.nodes() {
            if v == dead {
                assert_eq!(
                    nodes[v.0].depth, None,
                    "seed {seed}: the dead node computed"
                );
            } else {
                assert_eq!(nodes[v.0].depth, want[v.0], "seed {seed} node {}", v.0);
            }
        }
    }
}

/// Crashing the max-id node before round 0: survivors elect the max id
/// *among the survivors*, exactly as on the induced subgraph.
#[test]
fn crash_before_round_zero_election_on_survivors() {
    for seed in 70..73u64 {
        let g = Family::Gnp.generate(24, seed);
        let champion = g.nodes().max_by_key(|&v| g.id_of(v)).unwrap();
        let (dead, _) = removable_node(&g, NodeId(0));
        // crash the champion when the topology allows it, else any node
        let dead = if g
            .nodes()
            .all(|w| w == champion || survivor_distances(&g, NodeId(0), champion)[w.0].is_some())
            && champion != NodeId(0)
        {
            champion
        } else {
            dead
        };
        let plan = FaultPlan::new(seed).drop_prob(0.2).crash(dead, 0);
        let nodes = (0..g.node_count()).map(|_| ElectionNode::new()).collect();
        let (nodes, _) = run_protocol_alpha_reliable(&g, nodes, seed, 2, &plan, 1_000_000).unwrap();
        let survivor_max = g
            .nodes()
            .filter(|&v| v != dead)
            .map(|v| g.id_of(v))
            .max()
            .unwrap();
        for v in g.nodes().filter(|&v| v != dead) {
            assert_eq!(nodes[v.0].best, survivor_max, "seed {seed} node {}", v.0);
        }
    }
}

/// Exhausting the round budget yields a structured error that names the
/// stuck nodes and their pending-queue depths — never a bare panic.
#[test]
fn budget_exhaustion_names_stuck_nodes() {
    let g = Family::Path.generate(20, 1);
    let nodes: Vec<BfsNode> = (0..g.node_count()).map(|v| BfsNode::new(v == 0)).collect();
    let err = run_protocol(&g, nodes, 3).unwrap_err();
    match err {
        SimError::RoundLimitExceeded { limit, ref stall } => {
            assert_eq!(limit, 3);
            assert!(!stall.not_done.is_empty(), "no stuck nodes reported");
            // the far end of the path cannot have finished in 3 rounds
            assert!(stall.not_done.contains(&NodeId(19)), "{stall:?}");
        }
        other => panic!("expected RoundLimitExceeded, got {other:?}"),
    }
    let shown = err.to_string();
    assert!(
        shown.contains("not done"),
        "diagnosis lacks the stuck-node list: {shown}"
    );
    assert!(
        shown.contains("n3"),
        "diagnosis does not name a stuck node: {shown}"
    );
}

/// Reliable α with wire-exact execution toggled explicitly (the same
/// switch `KDOM_WIRE` flips — on by default, `off` disables — pinned
/// here without touching the process environment).
fn run_reliable<P: Protocol>(
    g: &Graph,
    nodes: Vec<P>,
    seed: u64,
    max_delay: u64,
    plan: &FaultPlan,
    exact: bool,
) -> (Vec<P>, AlphaReport) {
    let cfg = ReliableConfig::for_delays(max_delay, plan.max_extra_delay);
    let mut sim = AlphaSimulator::with_faults(g, nodes, seed, max_delay, plan)
        .reliable(cfg)
        .wire_exact(exact);
    let report = sim.run(1_000_000).expect("reliable α quiesces");
    (sim.into_nodes(), report)
}

/// Wire-exact legs for the lossy scenarios: encoding every frame to its
/// bit-exact wire form and delivering the *decoded* frame changes
/// nothing — outputs and the full `AlphaReport` (drops, retransmissions,
/// link bits) are byte-identical to the zero-copy path, proving the
/// recovery layer depends only on what is actually on the wire.
#[test]
fn wire_exact_leg_matches_default_under_loss() {
    for seed in 80..83u64 {
        let g = Family::Gnp.generate(30, seed);
        let plan = heavy_loss(seed ^ 0xACE);
        let mk = || (0..g.node_count()).map(|v| BfsNode::new(v == 0)).collect();
        let (plain_nodes, plain_report) = run_reliable::<BfsNode>(&g, mk(), seed, 3, &plan, false);
        let (exact_nodes, exact_report) = run_reliable::<BfsNode>(&g, mk(), seed, 3, &plan, true);
        assert_eq!(plain_report, exact_report, "seed {seed}: reports diverge");
        assert!(plain_report.dropped_messages > 0, "seed {seed}: no loss");
        let want = bfs_distances(&g, NodeId(0));
        for v in g.nodes() {
            assert_eq!(
                exact_nodes[v.0].depth, plain_nodes[v.0].depth,
                "seed {seed}"
            );
            assert_eq!(exact_nodes[v.0].depth, Some(want[v.0]), "seed {seed}");
        }
    }
}

/// Wire-exact leg for the loss + crash-stop scenario: the degraded
/// topology, the ARQ recovery, and the crash bookkeeping all survive
/// the encode/decode round trip byte-identically.
#[test]
fn wire_exact_leg_matches_default_under_loss_and_crash() {
    for seed in 90..93u64 {
        let g = Family::Gnp.generate(24, seed);
        let root = NodeId(0);
        let (dead, want) = removable_node(&g, root);
        let plan = FaultPlan::new(seed)
            .drop_prob(0.25)
            .dup_prob(0.05)
            .crash(dead, 0);
        let mk = || (0..g.node_count()).map(|v| BfsNode::new(v == 0)).collect();
        let (plain_nodes, plain_report) = run_reliable::<BfsNode>(&g, mk(), seed, 2, &plan, false);
        let (exact_nodes, exact_report) = run_reliable::<BfsNode>(&g, mk(), seed, 2, &plan, true);
        assert_eq!(plain_report, exact_report, "seed {seed}: reports diverge");
        for v in g.nodes() {
            assert_eq!(
                exact_nodes[v.0].depth, plain_nodes[v.0].depth,
                "seed {seed} node {}",
                v.0
            );
            let reference = if v == dead { None } else { want[v.0] };
            assert_eq!(
                exact_nodes[v.0].depth, reference,
                "seed {seed} node {}",
                v.0
            );
        }
    }
}

/// The stall diagnosis counts **queued message copies**, not arena slots:
/// a duplicated transmission occupies one `(node, port)` slot but is two
/// deliveries, and the pending-queue depth must say so.
#[test]
fn stall_report_counts_duplicated_copies() {
    #[derive(Clone, Debug)]
    struct Ping;
    kdom::congest::impl_wire_empty!(Ping);
    impl Message for Ping {}

    /// Node 0 broadcasts every round and never finishes; node 1 listens.
    struct Chatter {
        origin: bool,
    }
    impl Protocol for Chatter {
        type Msg = Ping;
        fn round(
            &mut self,
            _ctx: &NodeCtx<'_>,
            _inbox: &[(kdom::congest::Port, Ping)],
            out: &mut Outbox<Ping>,
        ) {
            if self.origin {
                out.broadcast(Ping);
            }
        }
        fn is_done(&self) -> bool {
            !self.origin
        }
    }

    let g = Family::Path.generate(2, 0);
    let plan = FaultPlan::new(3).dup_prob(1.0);
    let nodes = vec![Chatter { origin: true }, Chatter { origin: false }];
    let mut sim = Simulator::with_faults(&g, nodes, &plan);
    match sim.run(5).unwrap_err() {
        SimError::RoundLimitExceeded { ref stall, .. } => {
            let depth = stall
                .pending
                .iter()
                .find(|(v, _)| *v == NodeId(1))
                .map(|&(_, d)| d)
                .expect("node 1 must have a pending queue");
            assert_eq!(
                depth, 2,
                "pending depth must count both copies of the duplicated message: {stall:?}"
            );
        }
        other => panic!("expected RoundLimitExceeded, got {other:?}"),
    }
}
