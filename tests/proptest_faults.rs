//! Property suite for the fault layer: the injected fault stream is a
//! pure function of the plan, and the typed builder rejects exactly the
//! ill-formed inputs.
//!
//! The load-bearing property is **query independence**: [`FaultInjector`]
//! only advances its RNG in [`FaultInjector::transmit`], never in the
//! read-only probes (`is_crashed`, `link_is_down`, `crash_time`). Both
//! executors interleave those probes with transmissions in different
//! orders (the sync engine batches per round, α is event-driven), so any
//! RNG consumption in a probe would silently desynchronize the fault
//! streams between legs and break every cross-executor byte-identity
//! guarantee in this repo.

use kdom::congest::{FaultInjector, FaultPlan, FaultPlanError, Transmission};
use kdom::graph::{EdgeId, NodeId};
use kdom_rng::StdRng;

/// A random but plausible fault plan.
fn random_plan(rng: &mut StdRng) -> FaultPlan {
    let mut plan = FaultPlan::new(rng.next_u64())
        .drop_prob(rng.random_unit() * 0.6)
        .dup_prob(rng.random_unit() * 0.4)
        .max_extra_delay(rng.random_range(0u64..4));
    for node in 0..rng.random_range(0usize..4) {
        plan = plan.crash(NodeId(node * 3), rng.random_range(0u64..40));
    }
    for e in 0..rng.random_range(0usize..4) {
        let from = rng.random_range(0u64..30);
        plan = plan.link_down(EdgeId(e * 5), from, from + 1 + rng.random_range(0u64..20));
    }
    plan
}

/// A random transmission workload: which edge sends at which time.
fn random_workload(rng: &mut StdRng) -> Vec<(EdgeId, u64)> {
    let len = rng.random_range(20usize..200);
    (0..len)
        .map(|_| {
            (
                EdgeId(rng.random_range(0usize..40)),
                rng.random_range(0u64..60),
            )
        })
        .collect()
}

/// Replays `workload` through a fresh injector for `plan`. When
/// `probe_rng` is given, a random number of read-only queries is
/// interleaved before every transmission — the returned stream must not
/// notice.
fn replay(
    plan: &FaultPlan,
    workload: &[(EdgeId, u64)],
    mut probes: Option<&mut StdRng>,
) -> Vec<Transmission> {
    let mut inj = FaultInjector::new(plan);
    workload
        .iter()
        .map(|&(edge, now)| {
            if let Some(rng) = probes.as_deref_mut() {
                for _ in 0..rng.random_range(0usize..5) {
                    let node = NodeId(rng.random_range(0usize..30));
                    let t = rng.random_range(0u64..60);
                    let _ = inj.is_crashed(node, t);
                    let _ = inj.crash_time(node);
                    let _ = inj.link_is_down(EdgeId(rng.random_range(0usize..40)), t);
                }
            }
            inj.transmit(edge, now)
        })
        .collect()
}

/// Same seed ⇒ identical `Transmission` stream, no matter how many
/// `is_crashed` / `link_is_down` / `crash_time` queries are interleaved.
#[test]
fn transmission_stream_is_independent_of_interleaved_queries() {
    let mut rng = StdRng::seed_from_u64(0xFA17_0001);
    for case in 0..48 {
        let plan = random_plan(&mut rng);
        let workload = random_workload(&mut rng);
        let clean = replay(&plan, &workload, None);
        let mut probe_rng = StdRng::seed_from_u64(rng.next_u64());
        let probed = replay(&plan, &workload, Some(&mut probe_rng));
        assert_eq!(
            clean, probed,
            "case {case}: probes advanced the fault stream"
        );
        // and a second clean replay is byte-identical (pure function)
        assert_eq!(
            clean,
            replay(&plan, &workload, None),
            "case {case}: not replayable"
        );
    }
}

/// Drops attributed to down-intervals are flagged `down`, random drops
/// are not, and within a down-interval the RNG is not consumed (the
/// stream after the interval matches a plan without it, shifted only by
/// the skipped transmissions' absent draws).
#[test]
fn down_interval_drops_are_attributed_and_rng_free() {
    let mut rng = StdRng::seed_from_u64(0xFA17_0002);
    for case in 0..48 {
        let seed = rng.next_u64();
        let from = rng.random_range(0u64..20);
        let until = from + 1 + rng.random_range(0u64..20);
        let plan = FaultPlan::new(seed)
            .drop_prob(0.3)
            .link_down(EdgeId(7), from, until);
        let mut inj = FaultInjector::new(&plan);
        for t in from..until {
            let tx = inj.transmit(EdgeId(7), t);
            assert!(tx.dropped() && tx.down, "case {case} t={t}");
        }
        // the post-interval stream equals a fresh injector's stream:
        // the interval consumed zero RNG draws
        let mut fresh = FaultInjector::new(&plan);
        for t in until..until + 30 {
            assert_eq!(
                inj.transmit(EdgeId(7), t),
                fresh.transmit(EdgeId(7), t),
                "case {case} t={t}: the down-interval consumed RNG"
            );
        }
    }
}

/// The typed builder accepts every in-range input and rejects exactly
/// the ill-formed ones with the matching [`FaultPlanError`].
#[test]
fn builder_accepts_valid_and_rejects_invalid_inputs() {
    let mut rng = StdRng::seed_from_u64(0xFA17_0003);
    for case in 0..48 {
        let p = rng.random_unit();
        let plan = FaultPlan::new(case)
            .try_drop_prob(p)
            .and_then(|pl| pl.try_dup_prob(1.0 - p))
            .unwrap_or_else(|e| panic!("case {case}: in-range probability rejected: {e}"));

        // out-of-range, NaN, and infinite probabilities are rejected
        for bad in [-0.25, 1.0 + rng.random_unit(), f64::NAN, f64::INFINITY] {
            match plan.clone().try_drop_prob(bad) {
                Err(FaultPlanError::ProbabilityOutOfRange { what: "drop", p }) => {
                    assert!(p.is_nan() || !(0.0..=1.0).contains(&p), "case {case}");
                }
                other => panic!("case {case}: {bad} accepted: {other:?}"),
            }
        }

        // a second crash for the same node is rejected, any other node ok
        let node = NodeId(rng.random_range(0usize..20));
        let crashed = plan
            .clone()
            .try_crash(node, rng.random_range(0u64..50))
            .unwrap();
        match crashed.clone().try_crash(node, 99) {
            Err(FaultPlanError::DuplicateCrash { node: n }) => assert_eq!(n, node),
            other => panic!("case {case}: duplicate crash accepted: {other:?}"),
        }
        crashed
            .try_crash(NodeId(node.0 + 1), 1)
            .expect("distinct node crashes compose");

        // empty and inverted down-intervals are rejected
        let from = rng.random_range(1u64..40);
        for until in [from, from - 1] {
            match plan.clone().try_link_down(EdgeId(3), from, until) {
                Err(FaultPlanError::EmptyLinkDown { edge, .. }) => assert_eq!(edge, EdgeId(3)),
                other => panic!("case {case}: empty interval accepted: {other:?}"),
            }
        }
        plan.clone()
            .try_link_down(EdgeId(3), from, from + 1)
            .expect("non-empty interval accepted");
    }
}
