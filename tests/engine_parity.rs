//! Engine parity: every protocol in the repo must produce **byte-identical**
//! outputs and identical reports under every scheduler/thread configuration
//! of the shared round engine, and under reliable-α execution with loss.
//!
//! The determinism contract (DESIGN.md §4): staged sends are merged in
//! node-index order, and the fault injector's RNG is advanced only during
//! that sequential merge — so `{full-scan, active-set} × {1, 4 threads}`
//! are observationally one machine. These tests pin that contract for
//! BFS, election, DiamDOM, BalancedDOM coloring, SimpleMST, the Pipeline
//! (via Fast-MST), FastDOM_T/G, and Fast-MST.

use kdom::congest::{
    run_protocol_alpha_reliable, EngineConfig, FaultPlan, Message, NodeCtx, Outbox, Port, Protocol,
    Scheduling, Simulator, Wake,
};
use kdom::core::dist::bfs::BfsNode;
use kdom::core::dist::coloring::{BalancedConfig, BalancedNode};
use kdom::core::dist::diamdom::run_diamdom;
use kdom::core::dist::election::ElectionNode;
use kdom::core::dist::fastdom::{fast_dom_g_distributed, fast_dom_t_distributed};
use kdom::core::dist::fragments::{run_simple_mst, FragmentNode};
use kdom::core::fastdom::WithinCluster;
use kdom::graph::generators::{gnp_connected, path, Family, GenConfig};
use kdom::graph::tree::RootedTree;
use kdom::graph::{Graph, NodeId};
use kdom::mst::fastmst::fast_mst;

/// Every engine configuration the suite must agree across: both
/// schedulers, 1 vs 4 threads, fast-forward on vs off, a forced
/// dense-scan leg, and wire-exact execution (messages round-tripped
/// through their bit encoding at every hop). `with_shard_min(32)` lowers
/// the parallel-split threshold (the default is 1024) so the `n ≥ 128`
/// graphs here make the 4-thread legs genuinely shard; `with_dense_pct(0)`
/// forces the adaptive dense fallback on every round.
fn configs() -> Vec<(&'static str, EngineConfig)> {
    let base = EngineConfig::default().with_shard_min(32);
    vec![
        (
            "full-scan/1t",
            base.with_scheduling(Scheduling::FullScan).with_threads(1),
        ),
        (
            "full-scan/4t",
            base.with_scheduling(Scheduling::FullScan).with_threads(4),
        ),
        ("active-set/1t", base.with_threads(1)),
        ("active-set/4t", base.with_threads(4)),
        (
            "active-set/1t/no-ff",
            base.with_threads(1).with_fast_forward(false),
        ),
        (
            "active-set/4t/no-ff",
            base.with_threads(4).with_fast_forward(false),
        ),
        (
            "active-set/1t/dense",
            base.with_threads(1).with_dense_pct(0),
        ),
        (
            "active-set/1t/wire-exact",
            base.with_threads(1).with_wire_exact(true),
        ),
        (
            "active-set/4t/wire-exact",
            base.with_threads(4).with_wire_exact(true),
        ),
    ]
}

/// Runs `make_nodes(g)` under every config and asserts the Debug rendering
/// of the full node vector, the `RunReport`, and the run result are all
/// byte-identical to the first (full-scan, single-thread) leg.
fn assert_parity<P, F>(g: &Graph, make_nodes: F, plan: Option<&FaultPlan>, what: &str)
where
    P: Protocol + std::fmt::Debug,
    F: Fn(&Graph) -> Vec<P>,
{
    let mut baseline: Option<(String, String, String)> = None;
    for (name, cfg) in configs() {
        let mut sim = match plan {
            Some(p) => Simulator::with_faults_config(g, make_nodes(g), p, cfg),
            None => Simulator::with_config(g, make_nodes(g), cfg),
        };
        let outcome = format!("{:?}", sim.run(50_000));
        let nodes = format!("{:?}", sim.nodes());
        let report = format!("{:?}", sim.report());
        match &baseline {
            None => baseline = Some((outcome, nodes, report)),
            Some((o, n, r)) => {
                assert_eq!(o, &outcome, "{what}: run outcome diverged under {name}");
                assert_eq!(n, &nodes, "{what}: node states diverged under {name}");
                assert_eq!(r, &report, "{what}: RunReport diverged under {name}");
            }
        }
    }
}

fn balanced_nodes(g: &Graph) -> Vec<BalancedNode> {
    let t = RootedTree::from_graph(g, NodeId(0));
    let port_to = |v: NodeId, to: NodeId| -> Port {
        g.neighbors(v)
            .iter()
            .position(|e| e.to == to)
            .map(Port)
            .expect("tree edge present")
    };
    (0..g.node_count())
        .map(|v| {
            let v = NodeId(v);
            BalancedNode::new(BalancedConfig {
                parent: t.parent(v).map(|p| port_to(v, p)),
                children: t.children(v).iter().map(|&c| port_to(v, c)).collect(),
                id_bits: 48,
            })
        })
        .collect()
}

#[test]
fn bfs_parity() {
    for seed in 0..3u64 {
        let g = gnp_connected(&GenConfig::with_seed(200, seed), 0.04);
        assert_parity(
            &g,
            |g| (0..g.node_count()).map(|v| BfsNode::new(v == 0)).collect(),
            None,
            "BFS",
        );
    }
}

#[test]
fn election_parity() {
    let g = Family::Grid.generate(196, 5);
    assert_parity(
        &g,
        |g| (0..g.node_count()).map(|_| ElectionNode::new()).collect(),
        None,
        "election",
    );
}

#[test]
fn simple_mst_parity() {
    let g = gnp_connected(&GenConfig::with_seed(160, 9), 0.05);
    assert_parity(
        &g,
        |g| {
            g.nodes()
                .map(|v| FragmentNode::new(5, g.id_of(v)))
                .collect()
        },
        None,
        "SimpleMST",
    );
}

#[test]
fn coloring_parity() {
    let g = path(&GenConfig::with_seed(200, 9));
    assert_parity(&g, balanced_nodes, None, "BalancedDOM");
}

#[derive(Clone, Debug)]
struct Tok;
kdom::congest::impl_wire_empty!(Tok);
impl Message for Tok {}

/// A relay with long silent countdown phases: each node receives the
/// token, arms a timer `gap` rounds out ([`Wake::At`]), and only then
/// forwards it. Almost every round of the run is globally silent — the
/// worst case for a scanning scheduler and the best case for
/// fast-forward, which must nevertheless reproduce the identical report.
#[derive(Debug)]
struct Countdown {
    origin: bool,
    gap: u64,
    from: Option<Port>,
    fire_at: Option<u64>,
    fired: bool,
}

impl Protocol for Countdown {
    type Msg = Tok;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, Tok)], out: &mut Outbox<Tok>) {
        if self.origin && ctx.round == 0 {
            out.broadcast(Tok);
            self.fired = true;
            return;
        }
        if !self.fired && self.fire_at.is_none() {
            if let Some(&(p, _)) = inbox.first() {
                self.from = Some(p);
                self.fire_at = Some(ctx.round + self.gap);
            }
        }
        if let Some(r) = self.fire_at {
            if !self.fired && ctx.round >= r {
                self.fired = true;
                for q in ctx.ports() {
                    if Some(q) != self.from {
                        out.send(q, Tok);
                    }
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.fired
    }

    fn next_wake(&self, _now: u64) -> Wake {
        match self.fire_at {
            Some(r) if !self.fired => Wake::At(r),
            _ => Wake::OnMessage,
        }
    }
}

/// Fast-forward must skip the countdown gaps without perturbing a single
/// counter: ~`n · gap` rounds of which only ~`n` carry a message.
#[test]
fn countdown_parity_across_fast_forward() {
    let g = path(&GenConfig::with_seed(64, 2));
    let gap = 37;
    let make = |g: &Graph| {
        (0..g.node_count())
            .map(|v| Countdown {
                origin: v == 0,
                gap,
                from: None,
                fire_at: None,
                fired: false,
            })
            .collect()
    };
    assert_parity(&g, make, None, "countdown relay");
    // sanity: the run really is dominated by silent gaps
    let mut sim = Simulator::with_config(&g, make(&g), EngineConfig::default());
    let report = sim.run(50_000).expect("relay quiesces");
    assert!(report.rounds >= 63 * gap, "rounds {}", report.rounds);
    // one forward per node except the far endpoint
    assert_eq!(report.messages, 63);
}

/// Every node broadcasts in round 0: the densest round any protocol can
/// produce, with one message per directed edge.
#[derive(Debug)]
struct Burst {
    sent: bool,
}

impl Protocol for Burst {
    type Msg = Tok;

    fn round(&mut self, ctx: &NodeCtx<'_>, _inbox: &[(Port, Tok)], out: &mut Outbox<Tok>) {
        if ctx.round == 0 {
            out.broadcast(Tok);
            self.sent = true;
        }
    }

    fn is_done(&self) -> bool {
        self.sent
    }

    fn next_wake(&self, _now: u64) -> Wake {
        Wake::OnMessage
    }
}

/// `peak_messages_per_round` must be the **global** per-round maximum,
/// not a per-shard one: a 4-thread run whose shards are forced as small
/// as possible (`shard_min = 1`) has to report the same peak as the
/// single-threaded reference loop. With every node broadcasting in round
/// 0, that peak is exactly `2·|E|` — any per-shard aggregation bug
/// reports a fraction of it.
#[test]
fn peak_messages_per_round_is_global_across_shards() {
    let g = gnp_connected(&GenConfig::with_seed(256, 1), 0.04);
    let want_peak = 2 * g.edge_count() as u64;
    let make = |g: &Graph| {
        (0..g.node_count())
            .map(|_| Burst { sent: false })
            .collect::<Vec<_>>()
    };

    let (_, ref_report) =
        kdom::congest::engine::run_reference_loop(&g, make(&g), 1_000).expect("burst quiesces");
    assert_eq!(
        ref_report.peak_messages_per_round, want_peak,
        "reference loop disagrees with the analytic peak"
    );

    let cfg = EngineConfig::default().with_threads(4).with_shard_min(1);
    let mut sim = Simulator::with_config(&g, make(&g), cfg);
    let report = sim.run(1_000).expect("burst quiesces");
    assert_eq!(
        report.peak_messages_per_round, want_peak,
        "maximally-sharded 4-thread run reported a per-shard peak"
    );

    assert_parity(&g, make, None, "burst broadcast");
}

/// A node engineered to leave **two valid entries for the same (round,
/// node) pair** in the timer heap: it parks at round 10, is woken by a
/// message and moves its promise to round 3 (the round-10 heap entry goes
/// stale), then at round 3 re-parks at round 10 — which re-validates the
/// stale entry *and* pushes a fresh one. At round 10 both entries are
/// valid, so a scheduler that doesn't dedup its due-timer list steps the
/// node twice in one round: the wake-slot action runs twice (double state
/// mutation) and the second send silently merges into the occupied arena
/// slot as a fault-style duplicate copy.
#[derive(Debug)]
struct Repark {
    role: ReparkRole,
    phase: u8,
    from: Option<Port>,
    wake: Option<u64>,
    fires: u32,
}

#[derive(Debug, PartialEq)]
enum ReparkRole {
    /// Node 0: sends one token at round 0, then only absorbs replies.
    Driver,
    /// Node 1: runs the park / deviate / re-park sequence above.
    Target,
    /// Everyone else: permanently done, message-driven.
    Idle,
}

impl Repark {
    fn new(v: usize) -> Self {
        Repark {
            role: match v {
                0 => ReparkRole::Driver,
                1 => ReparkRole::Target,
                _ => ReparkRole::Idle,
            },
            phase: 0,
            from: None,
            wake: None,
            fires: 0,
        }
    }
}

impl Protocol for Repark {
    type Msg = Tok;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, Tok)], out: &mut Outbox<Tok>) {
        match self.role {
            ReparkRole::Driver => {
                if ctx.round == 0 {
                    out.send(Port(0), Tok);
                }
            }
            ReparkRole::Target => match self.phase {
                0 => {
                    // round 0: park at round 10
                    self.wake = Some(10);
                    self.phase = 1;
                }
                1 => {
                    if let Some(&(p, _)) = inbox.first() {
                        // woken by the driver's token: deviate to round 3
                        self.from = Some(p);
                        self.wake = Some(3);
                        self.phase = 2;
                    }
                }
                2 => {
                    if ctx.round == 3 {
                        // re-park at round 10: the stale heap entry from
                        // phase 0 is valid again alongside the new one
                        self.wake = Some(10);
                        self.phase = 3;
                    }
                }
                _ => {
                    if ctx.round == 10 {
                        // the wake-slot action: any double-step doubles
                        // `fires` and duplicates the reply on the wire
                        self.fires += 1;
                        out.send(self.from.expect("token seen"), Tok);
                        self.wake = None;
                    }
                }
            },
            ReparkRole::Idle => {}
        }
    }

    fn is_done(&self) -> bool {
        match self.role {
            ReparkRole::Driver => true,
            ReparkRole::Target => self.fires > 0,
            ReparkRole::Idle => true,
        }
    }

    fn next_wake(&self, _now: u64) -> Wake {
        match self.wake {
            Some(r) => Wake::At(r),
            None => Wake::OnMessage,
        }
    }
}

/// Regression test: duplicate valid timer entries must not step a node
/// twice in one round (due-timer dedup in the active-set scheduler).
#[test]
fn duplicate_timer_entries_step_once() {
    let g = path(&GenConfig::with_seed(8, 0));
    let make = |g: &Graph| (0..g.node_count()).map(Repark::new).collect::<Vec<_>>();
    assert_parity(&g, make, None, "re-park relay");

    // the double-step corrupts these directly: fires becomes 2 and the
    // duplicated reply inflates the message count from 2 to 3
    let mut sim = Simulator::with_config(&g, make(&g), EngineConfig::default());
    let report = sim.run(50_000).expect("re-park relay quiesces");
    assert_eq!(sim.nodes()[1].fires, 1, "target stepped twice at its wake");
    assert_eq!(report.messages, 2, "reply duplicated on the wire");
}

/// The fault stream (drops, duplicates, delays, a mid-run crash) is part
/// of the determinism contract: the injector RNG advances only in the
/// sequential merge, so faulty runs are byte-identical too.
#[test]
fn fault_injection_parity() {
    for seed in 0..2u64 {
        let g = gnp_connected(&GenConfig::with_seed(160, seed), 0.05);
        let plan = FaultPlan::new(seed ^ 0xD15EA5E)
            .drop_prob(0.2)
            .dup_prob(0.1)
            .max_extra_delay(2)
            .crash(NodeId(7), 40);
        assert_parity(
            &g,
            |g| (0..g.node_count()).map(|v| BfsNode::new(v == 0)).collect(),
            Some(&plan),
            "faulty BFS",
        );
        assert_parity(
            &g,
            |g| {
                g.nodes()
                    .map(|v| FragmentNode::new(4, g.id_of(v)))
                    .collect()
            },
            Some(&plan),
            "faulty SimpleMST",
        );
    }
}

/// Fault counters must survive quiescence fast-forward byte-identically
/// even when the losses come from a scheduled link-down interval: the
/// countdown relay makes almost every round silent (so the no-ff legs
/// actually execute thousands of rounds the ff legs skip), while the
/// down interval severs the relay mid-run — `dropped_messages` comes
/// entirely from the scheduled outage (the relay has no retries, so a
/// probabilistic drop would just end the run early), `duplicated_messages`
/// from the duplicator, and every config has to agree on the exact totals.
#[test]
fn fault_counter_parity_across_fast_forward() {
    let g = path(&GenConfig::with_seed(64, 5));
    let down_edge = g.edges()[20].id;
    let plan = FaultPlan::new(0xFFD0)
        .dup_prob(0.2)
        .link_down(down_edge, 300, 2_000)
        .crash(NodeId(60), 900);
    let gap = 37;
    let make = |g: &Graph| {
        (0..g.node_count())
            .map(|v| Countdown {
                origin: v == 0,
                gap,
                from: None,
                fire_at: None,
                fired: false,
            })
            .collect::<Vec<_>>()
    };
    assert_parity(&g, make, Some(&plan), "faulty countdown relay");

    // sanity: both loss paths and the duplicator really fired
    let mut sim = Simulator::with_faults_config(&g, make(&g), &plan, EngineConfig::default());
    let _ = sim.run(50_000);
    let report = sim.report().clone();
    assert!(report.dropped_messages > 0, "no drops: {report:?}");
    assert!(report.duplicated_messages > 0, "no dups: {report:?}");
}

/// Reliable-α at 20% loss recovers the synchronous outputs exactly, and
/// two identically-seeded α runs agree on every `AlphaReport` counter.
#[test]
fn reliable_alpha_matches_sync() {
    let g = gnp_connected(&GenConfig::with_seed(130, 4), 0.06);
    let plan = FaultPlan::new(77).drop_prob(0.2);

    // BFS: depths must match the synchronous run (fast-forward on and off).
    let mut sync = Simulator::new(&g, (0..130).map(|v| BfsNode::new(v == 0)).collect());
    sync.run(10_000).expect("sync BFS quiesces");
    let mut sync_noff = Simulator::with_config(
        &g,
        (0..130).map(|v| BfsNode::new(v == 0)).collect(),
        EngineConfig::default().with_fast_forward(false),
    );
    sync_noff.run(10_000).expect("sync BFS quiesces");
    assert_eq!(
        format!("{:?}", (sync.nodes(), sync.report())),
        format!("{:?}", (sync_noff.nodes(), sync_noff.report())),
        "fast-forward changed the synchronous baseline"
    );
    let nodes: Vec<BfsNode> = (0..130).map(|v| BfsNode::new(v == 0)).collect();
    let (a1, r1) =
        run_protocol_alpha_reliable(&g, nodes.clone(), 7, 3, &plan, 500_000).expect("α BFS");
    let (a2, r2) = run_protocol_alpha_reliable(&g, nodes, 7, 3, &plan, 500_000).expect("α BFS");
    for (v, (a, s)) in a1.iter().zip(sync.nodes()).enumerate() {
        assert_eq!(a.depth, s.depth, "node {v}");
    }
    assert_eq!(
        format!("{r1:?}"),
        format!("{r2:?}"),
        "AlphaReport not deterministic"
    );
    assert_eq!(
        format!("{:?}", a1),
        format!("{:?}", a2),
        "α node states not deterministic"
    );

    // SimpleMST: the fragment forest survives 20% loss byte-identically.
    let k = 4;
    let want = run_simple_mst(&g, k);
    let nodes: Vec<FragmentNode> = g
        .nodes()
        .map(|v| FragmentNode::new(k, g.id_of(v)))
        .collect();
    let (mst_nodes, _) =
        run_protocol_alpha_reliable(&g, nodes, 11, 3, &plan, 2_000_000).expect("α SimpleMST");
    let mut got: Vec<_> = g
        .nodes()
        .filter_map(|v| mst_nodes[v.0].parent.map(|p| g.neighbors(v)[p.0].edge))
        .collect();
    got.sort_unstable();
    let mut edges = want.tree_edges.clone();
    edges.sort_unstable();
    assert_eq!(got, edges, "α MST fragments diverged from sync");
}

/// Wire-exact α execution — every frame encoded at send, decoded at
/// delivery, ARQ framing included — must be byte-identical to the
/// in-memory run: same `AlphaReport`, same node states, same fault
/// stream. Covers raw α (fault-free) and reliable α under 20% loss with
/// duplication; the sync executor's wire-exact leg lives in [`configs`].
#[test]
fn wire_exact_alpha_parity() {
    use kdom::congest::AlphaSimulator;

    let g = gnp_connected(&GenConfig::with_seed(90, 13), 0.08);
    let make = || (0..90).map(|v| BfsNode::new(v == 0)).collect::<Vec<_>>();

    // raw α, fault-free
    let raw = |exact: bool| {
        let mut sim = AlphaSimulator::new(&g, make(), 21, 3).wire_exact(exact);
        let report = sim.run(100_000).expect("α BFS quiesces");
        (format!("{:?}", sim.into_nodes()), format!("{report:?}"))
    };
    assert_eq!(raw(false), raw(true), "raw α diverged under wire-exact");

    // reliable α under loss + duplication
    let plan = FaultPlan::new(0xEC0DEC).drop_prob(0.2).dup_prob(0.1);
    let lossy = |exact: bool| {
        let cfg = kdom::congest::ReliableConfig::for_delays(3, plan.max_extra_delay);
        let mut sim = AlphaSimulator::with_faults(&g, make(), 21, 3, &plan)
            .reliable(cfg)
            .wire_exact(exact);
        let report = sim.run(500_000).expect("reliable α BFS quiesces");
        (format!("{:?}", sim.into_nodes()), format!("{report:?}"))
    };
    let (dn, dr) = lossy(false);
    let (wn, wr) = lossy(true);
    assert_eq!(dr, wr, "reliable-α report diverged under wire-exact");
    assert_eq!(dn, wn, "reliable-α node states diverged under wire-exact");
}

/// Composed runners (DiamDOM, FastDOM_T/G, Fast-MST with its Pipeline
/// stage) read the engine configuration from the environment, so this is
/// the one test that mutates `KDOM_THREADS`/`KDOM_SCHED`/`KDOM_FASTFWD`/
/// `KDOM_WIRE` — everything else in the binary uses explicit configs, and
/// Rust runs tests in one process, so only one env-touching test may
/// exist.
#[test]
fn composed_runners_parity_under_env() {
    let legs = [
        ("1", "active", "1", "off"),
        ("4", "active", "1", "off"),
        ("1", "full", "1", "off"),
        ("4", "full", "1", "off"),
        ("1", "active", "0", "off"),
        ("4", "active", "0", "off"),
        ("1", "active", "1", "exact"),
        ("4", "active", "1", "exact"),
    ];
    let mut baseline: Option<[String; 4]> = None;

    let gd = gnp_connected(&GenConfig::with_seed(150, 3), 0.05);
    let gt = Family::RandomTree.generate(150, 8);
    let gg = gnp_connected(&GenConfig::with_seed(140, 6), 0.06);

    for (threads, sched, fastfwd, wire) in legs {
        std::env::set_var("KDOM_THREADS", threads);
        std::env::set_var("KDOM_SCHED", sched);
        std::env::set_var("KDOM_FASTFWD", fastfwd);
        std::env::set_var("KDOM_WIRE", wire);
        let diam = format!("{:?}", run_diamdom(&gd, NodeId(0), 3));
        let dom_t = format!(
            "{:?}",
            fast_dom_t_distributed(&gt, 2, WithinCluster::OptimalDp)
        );
        let dom_g = format!(
            "{:?}",
            fast_dom_g_distributed(&gg, 3, WithinCluster::DiamDom)
        );
        let mst = format!("{:?}", fast_mst(&gg));
        let got = [diam, dom_t, dom_g, mst];
        match &baseline {
            None => baseline = Some(got),
            Some(want) => {
                for (i, name) in ["DiamDOM", "FastDOM_T", "FastDOM_G", "Fast-MST"]
                    .iter()
                    .enumerate()
                {
                    assert_eq!(
                        want[i], got[i],
                        "{name} diverged at KDOM_THREADS={threads} \
                         KDOM_SCHED={sched} KDOM_FASTFWD={fastfwd} \
                         KDOM_WIRE={wire}"
                    );
                }
            }
        }
    }
    std::env::remove_var("KDOM_THREADS");
    std::env::remove_var("KDOM_SCHED");
    std::env::remove_var("KDOM_FASTFWD");
    std::env::remove_var("KDOM_WIRE");
}
