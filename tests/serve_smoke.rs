//! End-to-end smoke of the `kdom-serve` binary: start a server on an
//! ephemeral port, submit a sweep over two algorithms × three seeds,
//! resubmit it, and assert the second pass was served from the cache.
//! Per-job JSONL traces land in `target/serve-smoke/` so a failing CI
//! run has artifacts to upload.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use kdom::congest::transport::Endpoint;
use kdom::congest::{Algo, RunSpec, SweepSpec};
use kdom::serve::Client;

/// Kills the server on drop so a failing assertion doesn't leak it.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn artifact_dir() -> std::path::PathBuf {
    // target/serve-smoke, derived from this test binary's location
    let mut dir = std::env::current_exe().expect("test exe path");
    while dir.file_name().is_some_and(|n| n != "target") {
        dir.pop();
    }
    dir.join("serve-smoke")
}

fn start_server() -> (ServerGuard, Endpoint) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kdom-serve"))
        .args(["serve", "--listen", "tcp:127.0.0.1:0", "--jobs", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn kdom-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read readiness line");
    let ep: Endpoint = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected readiness line {line:?}"))
        .parse()
        .expect("endpoint parses");
    (ServerGuard(child), ep)
}

#[test]
fn sweep_twice_hits_the_cache_and_streams_traces() {
    let (server, ep) = start_server();
    let mut client = Client::connect(&ep).expect("connect");
    client.ping().expect("server is live");

    let info = client.graph_spec("grid:64:9").expect("install graph");
    let sweep = SweepSpec::new(RunSpec::default().with_k(4).with_trace(true))
        .over_algos(&[Algo::SimpleMst, Algo::Bfs])
        .over_seeds(&[1, 2, 3]);

    let first = client.sweep(info.fingerprint, &sweep).expect("first sweep");
    assert_eq!(first.len(), 6, "2 algorithms × 3 seeds");
    let mut first_replies = Vec::new();
    for id in &first {
        let reply = client.wait(*id).expect("job finishes");
        assert!(!reply.from_cache, "a fresh sweep must miss");
        assert_eq!(reply.outputs.len(), info.nodes);
        first_replies.push(reply);
    }

    // harvest the JSONL traces as CI artifacts and sanity-check them
    let dir = artifact_dir();
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    for (id, spec) in first.iter().zip(sweep.specs()) {
        let path = dir.join(format!("job-{id}-{}-s{}.jsonl", spec.algo, spec.seed));
        let mut lines = Vec::new();
        client
            .trace(*id, |l| lines.push(l.to_string()))
            .expect("stream trace");
        assert!(!lines.is_empty(), "traced jobs must emit events");
        for line in &lines {
            assert!(line.starts_with('{'), "JSONL line expected, got {line:?}");
        }
        std::fs::write(&path, lines.join("\n") + "\n").expect("write artifact");
    }

    // the identical sweep again: every job served from the cache,
    // byte-identical to the first pass
    let second = client.sweep(info.fingerprint, &sweep).expect("resubmit");
    let mut hits = 0;
    for (id, want) in second.iter().zip(&first_replies) {
        let reply = client.wait(*id).expect("cached job finishes");
        hits += u64::from(reply.from_cache);
        assert_eq!(reply.report, want.report, "cached report identical");
        assert_eq!(reply.outputs, want.outputs, "cached outputs identical");
    }
    assert_eq!(hits, 6, "the whole resubmitted sweep must hit the cache");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.pool.submitted, 12);
    assert_eq!(stats.pool.engine_runs, 6, "resubmission ran nothing");
    assert!(stats.pool.cache.hits >= 6);
    assert_eq!(stats.graphs, 1);

    client.shutdown().expect("graceful shutdown");
    drop(server); // reaps the child (already exiting)
}
