//! The paper's §1.2 synchrony argument, executed: every protocol in the
//! repo runs *unchanged* on an asynchronous network under synchronizer α
//! and produces exactly the synchronous outputs.

use kdom::congest::run_protocol_alpha;
use kdom::core::dist::bfs::BfsNode;
use kdom::core::dist::election::ElectionNode;
use kdom::core::dist::fragments::{run_simple_mst, FragmentNode};
use kdom::graph::generators::gnp_connected;
use kdom::graph::generators::{Family, GenConfig};
use kdom::graph::properties::bfs_distances;
use kdom::graph::NodeId;

#[test]
fn bfs_under_alpha_matches_synchronous() {
    for seed in 0..4u64 {
        let g = gnp_connected(&GenConfig::with_seed(60, seed), 0.08);
        let nodes: Vec<BfsNode> = (0..60).map(|v| BfsNode::new(v == 0)).collect();
        let (nodes, report) = run_protocol_alpha(&g, nodes, seed, 4, 50_000).unwrap();
        let want = bfs_distances(&g, NodeId(0));
        for v in 0..60 {
            assert_eq!(nodes[v].depth, Some(want[v]), "seed {seed} node {v}");
        }
        assert!(report.control_messages > report.payload_messages);
    }
}

#[test]
fn election_under_alpha_matches_synchronous() {
    let g = Family::Grid.generate(49, 5);
    let nodes: Vec<ElectionNode> = (0..g.node_count()).map(|_| ElectionNode::new()).collect();
    let (nodes, _) = run_protocol_alpha(&g, nodes, 3, 5, 50_000).unwrap();
    let max_id = g.nodes().map(|v| g.id_of(v)).max().unwrap();
    for n in &nodes {
        assert_eq!(n.best, max_id);
    }
}

#[test]
fn simple_mst_under_alpha_matches_synchronous() {
    // SimpleMST is entirely round-schedule driven — the hardest case for
    // a synchronizer. The α execution must select the same MST edges.
    let g = gnp_connected(&GenConfig::with_seed(40, 9), 0.15);
    let k = 5;
    let sync = run_simple_mst(&g, k);
    let nodes: Vec<FragmentNode> = g
        .nodes()
        .map(|v| FragmentNode::new(k, g.id_of(v)))
        .collect();
    let (nodes, _) = run_protocol_alpha(&g, nodes, 17, 3, 500_000).unwrap();
    // reconstruct the selected edges from parent pointers
    let mut got: Vec<_> = g
        .nodes()
        .filter_map(|v| nodes[v.0].parent.map(|p| g.neighbors(v)[p.0].edge))
        .collect();
    got.sort_unstable();
    let mut want = sync.tree_edges.clone();
    want.sort_unstable();
    assert_eq!(got, want, "α execution must pick the same MST fragments");
}

#[test]
fn alpha_time_scales_with_max_delay() {
    let g = Family::Grid.generate(64, 2);
    let mk = || {
        let nodes: Vec<BfsNode> = (0..g.node_count()).map(|v| BfsNode::new(v == 0)).collect();
        nodes
    };
    let (_, fast) = run_protocol_alpha(&g, mk(), 1, 1, 50_000).unwrap();
    let (_, slow) = run_protocol_alpha(&g, mk(), 1, 8, 50_000).unwrap();
    assert!(
        slow.virtual_time > fast.virtual_time,
        "delays slow virtual time"
    );
}
