/root/repo/target/debug/libkdom_rng.rlib: /root/repo/crates/rng/src/lib.rs
