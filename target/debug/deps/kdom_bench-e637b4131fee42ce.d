/root/repo/target/debug/deps/kdom_bench-e637b4131fee42ce.d: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libkdom_bench-e637b4131fee42ce.rmeta: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/exps.rs:
crates/bench/src/harness.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
