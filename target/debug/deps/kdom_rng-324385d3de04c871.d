/root/repo/target/debug/deps/kdom_rng-324385d3de04c871.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libkdom_rng-324385d3de04c871.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
