/root/repo/target/debug/deps/alpha_execution-c514592ac98f4800.d: tests/alpha_execution.rs

/root/repo/target/debug/deps/alpha_execution-c514592ac98f4800: tests/alpha_execution.rs

tests/alpha_execution.rs:
