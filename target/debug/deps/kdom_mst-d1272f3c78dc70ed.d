/root/repo/target/debug/deps/kdom_mst-d1272f3c78dc70ed.d: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

/root/repo/target/debug/deps/libkdom_mst-d1272f3c78dc70ed.rmeta: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

crates/mst/src/lib.rs:
crates/mst/src/baselines.rs:
crates/mst/src/fastmst.rs:
crates/mst/src/pipeline.rs:
