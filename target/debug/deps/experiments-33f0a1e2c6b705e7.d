/root/repo/target/debug/deps/experiments-33f0a1e2c6b705e7.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-33f0a1e2c6b705e7: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
