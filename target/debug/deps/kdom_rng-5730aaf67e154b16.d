/root/repo/target/debug/deps/kdom_rng-5730aaf67e154b16.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libkdom_rng-5730aaf67e154b16.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
