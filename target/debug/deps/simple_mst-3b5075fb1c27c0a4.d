/root/repo/target/debug/deps/simple_mst-3b5075fb1c27c0a4.d: crates/bench/benches/simple_mst.rs

/root/repo/target/debug/deps/libsimple_mst-3b5075fb1c27c0a4.rmeta: crates/bench/benches/simple_mst.rs

crates/bench/benches/simple_mst.rs:
