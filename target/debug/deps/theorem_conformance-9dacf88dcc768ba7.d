/root/repo/target/debug/deps/theorem_conformance-9dacf88dcc768ba7.d: tests/theorem_conformance.rs

/root/repo/target/debug/deps/libtheorem_conformance-9dacf88dcc768ba7.rmeta: tests/theorem_conformance.rs

tests/theorem_conformance.rs:
