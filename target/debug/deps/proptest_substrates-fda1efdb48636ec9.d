/root/repo/target/debug/deps/proptest_substrates-fda1efdb48636ec9.d: tests/proptest_substrates.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_substrates-fda1efdb48636ec9.rmeta: tests/proptest_substrates.rs Cargo.toml

tests/proptest_substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
