/root/repo/target/debug/deps/edge_cases-4d875f2a15334bae.d: tests/edge_cases.rs

/root/repo/target/debug/deps/libedge_cases-4d875f2a15334bae.rmeta: tests/edge_cases.rs

tests/edge_cases.rs:
