/root/repo/target/debug/deps/kdom-b75cbf575c606829.d: src/lib.rs

/root/repo/target/debug/deps/libkdom-b75cbf575c606829.rmeta: src/lib.rs

src/lib.rs:
