/root/repo/target/debug/deps/kdom-91f74f9c07e66125.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libkdom-91f74f9c07e66125.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
