/root/repo/target/debug/deps/theorem_conformance-11b4f51d9beeeb5f.d: tests/theorem_conformance.rs

/root/repo/target/debug/deps/theorem_conformance-11b4f51d9beeeb5f: tests/theorem_conformance.rs

tests/theorem_conformance.rs:
