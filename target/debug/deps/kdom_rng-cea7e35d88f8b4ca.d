/root/repo/target/debug/deps/kdom_rng-cea7e35d88f8b4ca.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libkdom_rng-cea7e35d88f8b4ca.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
