/root/repo/target/debug/deps/proptest_alpha-05752dccba784357.d: tests/proptest_alpha.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_alpha-05752dccba784357.rmeta: tests/proptest_alpha.rs Cargo.toml

tests/proptest_alpha.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
