/root/repo/target/debug/deps/kdom_graph-fcb8698638bb2486.d: crates/graph/src/lib.rs crates/graph/src/dsu.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/mst_ref.rs crates/graph/src/properties.rs crates/graph/src/tree.rs

/root/repo/target/debug/deps/libkdom_graph-fcb8698638bb2486.rmeta: crates/graph/src/lib.rs crates/graph/src/dsu.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/mst_ref.rs crates/graph/src/properties.rs crates/graph/src/tree.rs

crates/graph/src/lib.rs:
crates/graph/src/dsu.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/mst_ref.rs:
crates/graph/src/properties.rs:
crates/graph/src/tree.rs:
