/root/repo/target/debug/deps/kdom_congest-3c8c6cb148599211.d: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/engine.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs

/root/repo/target/debug/deps/libkdom_congest-3c8c6cb148599211.rlib: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/engine.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs

/root/repo/target/debug/deps/libkdom_congest-3c8c6cb148599211.rmeta: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/engine.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs

crates/congest/src/lib.rs:
crates/congest/src/alpha.rs:
crates/congest/src/engine.rs:
crates/congest/src/faults.rs:
crates/congest/src/reliable.rs:
crates/congest/src/report.rs:
crates/congest/src/sim.rs:
