/root/repo/target/debug/deps/fastdom-5e5a101cb93933fd.d: crates/bench/benches/fastdom.rs

/root/repo/target/debug/deps/libfastdom-5e5a101cb93933fd.rmeta: crates/bench/benches/fastdom.rs

crates/bench/benches/fastdom.rs:
