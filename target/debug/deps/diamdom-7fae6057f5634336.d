/root/repo/target/debug/deps/diamdom-7fae6057f5634336.d: crates/bench/benches/diamdom.rs

/root/repo/target/debug/deps/libdiamdom-7fae6057f5634336.rmeta: crates/bench/benches/diamdom.rs

crates/bench/benches/diamdom.rs:
