/root/repo/target/debug/deps/charge_model-eb7d5a4988dfbbbd.d: tests/charge_model.rs Cargo.toml

/root/repo/target/debug/deps/libcharge_model-eb7d5a4988dfbbbd.rmeta: tests/charge_model.rs Cargo.toml

tests/charge_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
