/root/repo/target/debug/deps/kdom_bench-2506e58293b3036a.d: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libkdom_bench-2506e58293b3036a.rmeta: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/exps.rs:
crates/bench/src/harness.rs:
crates/bench/src/table.rs:
