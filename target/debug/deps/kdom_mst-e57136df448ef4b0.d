/root/repo/target/debug/deps/kdom_mst-e57136df448ef4b0.d: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

/root/repo/target/debug/deps/libkdom_mst-e57136df448ef4b0.rlib: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

/root/repo/target/debug/deps/libkdom_mst-e57136df448ef4b0.rmeta: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

crates/mst/src/lib.rs:
crates/mst/src/baselines.rs:
crates/mst/src/fastmst.rs:
crates/mst/src/pipeline.rs:
