/root/repo/target/debug/deps/proptest_domination-98a2f665e12432f9.d: tests/proptest_domination.rs

/root/repo/target/debug/deps/libproptest_domination-98a2f665e12432f9.rmeta: tests/proptest_domination.rs

tests/proptest_domination.rs:
