/root/repo/target/debug/deps/theorem_conformance-ac6b862ac412e5d5.d: tests/theorem_conformance.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem_conformance-ac6b862ac412e5d5.rmeta: tests/theorem_conformance.rs Cargo.toml

tests/theorem_conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
