/root/repo/target/debug/deps/fastdom-29f9b6e1467effc5.d: crates/bench/benches/fastdom.rs Cargo.toml

/root/repo/target/debug/deps/libfastdom-29f9b6e1467effc5.rmeta: crates/bench/benches/fastdom.rs Cargo.toml

crates/bench/benches/fastdom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
