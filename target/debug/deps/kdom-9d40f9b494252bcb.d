/root/repo/target/debug/deps/kdom-9d40f9b494252bcb.d: src/lib.rs

/root/repo/target/debug/deps/libkdom-9d40f9b494252bcb.rmeta: src/lib.rs

src/lib.rs:
