/root/repo/target/debug/deps/kdom_mst-8500dfaacdeea765.d: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

/root/repo/target/debug/deps/kdom_mst-8500dfaacdeea765: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

crates/mst/src/lib.rs:
crates/mst/src/baselines.rs:
crates/mst/src/fastmst.rs:
crates/mst/src/pipeline.rs:
