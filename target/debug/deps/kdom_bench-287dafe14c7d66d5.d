/root/repo/target/debug/deps/kdom_bench-287dafe14c7d66d5.d: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/kdom_bench-287dafe14c7d66d5: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/exps.rs:
crates/bench/src/harness.rs:
crates/bench/src/table.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
