/root/repo/target/debug/deps/alpha_execution-0d55dbce699a4a72.d: tests/alpha_execution.rs

/root/repo/target/debug/deps/libalpha_execution-0d55dbce699a4a72.rmeta: tests/alpha_execution.rs

tests/alpha_execution.rs:
