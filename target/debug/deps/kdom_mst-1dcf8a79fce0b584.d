/root/repo/target/debug/deps/kdom_mst-1dcf8a79fce0b584.d: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libkdom_mst-1dcf8a79fce0b584.rmeta: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs Cargo.toml

crates/mst/src/lib.rs:
crates/mst/src/baselines.rs:
crates/mst/src/fastmst.rs:
crates/mst/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
