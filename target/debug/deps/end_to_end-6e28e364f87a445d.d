/root/repo/target/debug/deps/end_to_end-6e28e364f87a445d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-6e28e364f87a445d: tests/end_to_end.rs

tests/end_to_end.rs:
