/root/repo/target/debug/deps/kdom-b06fcf2b724a1e93.d: src/lib.rs

/root/repo/target/debug/deps/kdom-b06fcf2b724a1e93: src/lib.rs

src/lib.rs:
