/root/repo/target/debug/deps/fastmst-f917e7d397be9916.d: crates/bench/benches/fastmst.rs Cargo.toml

/root/repo/target/debug/deps/libfastmst-f917e7d397be9916.rmeta: crates/bench/benches/fastmst.rs Cargo.toml

crates/bench/benches/fastmst.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
