/root/repo/target/debug/deps/end_to_end-cd7825e21acc268a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-cd7825e21acc268a.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
