/root/repo/target/debug/deps/proptest_substrates-cae37742a205c553.d: tests/proptest_substrates.rs

/root/repo/target/debug/deps/libproptest_substrates-cae37742a205c553.rmeta: tests/proptest_substrates.rs

tests/proptest_substrates.rs:
