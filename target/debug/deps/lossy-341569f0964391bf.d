/root/repo/target/debug/deps/lossy-341569f0964391bf.d: crates/bench/benches/lossy.rs Cargo.toml

/root/repo/target/debug/deps/liblossy-341569f0964391bf.rmeta: crates/bench/benches/lossy.rs Cargo.toml

crates/bench/benches/lossy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
