/root/repo/target/debug/deps/engine_parity-0e0f4bd528ea6134.d: tests/engine_parity.rs Cargo.toml

/root/repo/target/debug/deps/libengine_parity-0e0f4bd528ea6134.rmeta: tests/engine_parity.rs Cargo.toml

tests/engine_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
