/root/repo/target/debug/deps/kdom_graph-d809a7fd7204c8de.d: crates/graph/src/lib.rs crates/graph/src/dsu.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/mst_ref.rs crates/graph/src/properties.rs crates/graph/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libkdom_graph-d809a7fd7204c8de.rmeta: crates/graph/src/lib.rs crates/graph/src/dsu.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/mst_ref.rs crates/graph/src/properties.rs crates/graph/src/tree.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/dsu.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/mst_ref.rs:
crates/graph/src/properties.rs:
crates/graph/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
