/root/repo/target/debug/deps/charge_model-dd81c1a4011622a7.d: tests/charge_model.rs

/root/repo/target/debug/deps/charge_model-dd81c1a4011622a7: tests/charge_model.rs

tests/charge_model.rs:
