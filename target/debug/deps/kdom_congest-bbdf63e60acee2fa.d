/root/repo/target/debug/deps/kdom_congest-bbdf63e60acee2fa.d: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs

/root/repo/target/debug/deps/libkdom_congest-bbdf63e60acee2fa.rmeta: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs

crates/congest/src/lib.rs:
crates/congest/src/alpha.rs:
crates/congest/src/faults.rs:
crates/congest/src/reliable.rs:
crates/congest/src/report.rs:
crates/congest/src/sim.rs:
