/root/repo/target/debug/deps/charge_model-4ab92217c16846bf.d: tests/charge_model.rs

/root/repo/target/debug/deps/libcharge_model-4ab92217c16846bf.rmeta: tests/charge_model.rs

tests/charge_model.rs:
