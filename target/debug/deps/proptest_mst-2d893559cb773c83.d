/root/repo/target/debug/deps/proptest_mst-2d893559cb773c83.d: tests/proptest_mst.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_mst-2d893559cb773c83.rmeta: tests/proptest_mst.rs Cargo.toml

tests/proptest_mst.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
