/root/repo/target/debug/deps/kdom_congest-4e7c96037537e1e1.d: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/engine.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libkdom_congest-4e7c96037537e1e1.rmeta: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/engine.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs Cargo.toml

crates/congest/src/lib.rs:
crates/congest/src/alpha.rs:
crates/congest/src/engine.rs:
crates/congest/src/faults.rs:
crates/congest/src/reliable.rs:
crates/congest/src/report.rs:
crates/congest/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
