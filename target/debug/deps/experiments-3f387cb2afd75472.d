/root/repo/target/debug/deps/experiments-3f387cb2afd75472.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-3f387cb2afd75472.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
