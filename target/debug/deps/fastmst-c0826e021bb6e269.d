/root/repo/target/debug/deps/fastmst-c0826e021bb6e269.d: crates/bench/benches/fastmst.rs

/root/repo/target/debug/deps/libfastmst-c0826e021bb6e269.rmeta: crates/bench/benches/fastmst.rs

crates/bench/benches/fastmst.rs:
