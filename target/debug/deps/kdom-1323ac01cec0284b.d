/root/repo/target/debug/deps/kdom-1323ac01cec0284b.d: src/lib.rs

/root/repo/target/debug/deps/libkdom-1323ac01cec0284b.rlib: src/lib.rs

/root/repo/target/debug/deps/libkdom-1323ac01cec0284b.rmeta: src/lib.rs

src/lib.rs:
