/root/repo/target/debug/deps/kdom_core-379c491a9cc418fc.d: crates/core/src/lib.rs crates/core/src/balanced.rs crates/core/src/cluster.rs crates/core/src/clustering.rs crates/core/src/coloring.rs crates/core/src/fastdom.rs crates/core/src/fragments.rs crates/core/src/levels.rs crates/core/src/logstar.rs crates/core/src/partition.rs crates/core/src/treedp.rs crates/core/src/verify.rs crates/core/src/dist/mod.rs crates/core/src/dist/bfs.rs crates/core/src/dist/coloring.rs crates/core/src/dist/diamdom.rs crates/core/src/dist/election.rs crates/core/src/dist/executor.rs crates/core/src/dist/fastdom.rs crates/core/src/dist/fragments.rs crates/core/src/dist/partition1.rs crates/core/src/dist/treedp.rs

/root/repo/target/debug/deps/libkdom_core-379c491a9cc418fc.rlib: crates/core/src/lib.rs crates/core/src/balanced.rs crates/core/src/cluster.rs crates/core/src/clustering.rs crates/core/src/coloring.rs crates/core/src/fastdom.rs crates/core/src/fragments.rs crates/core/src/levels.rs crates/core/src/logstar.rs crates/core/src/partition.rs crates/core/src/treedp.rs crates/core/src/verify.rs crates/core/src/dist/mod.rs crates/core/src/dist/bfs.rs crates/core/src/dist/coloring.rs crates/core/src/dist/diamdom.rs crates/core/src/dist/election.rs crates/core/src/dist/executor.rs crates/core/src/dist/fastdom.rs crates/core/src/dist/fragments.rs crates/core/src/dist/partition1.rs crates/core/src/dist/treedp.rs

/root/repo/target/debug/deps/libkdom_core-379c491a9cc418fc.rmeta: crates/core/src/lib.rs crates/core/src/balanced.rs crates/core/src/cluster.rs crates/core/src/clustering.rs crates/core/src/coloring.rs crates/core/src/fastdom.rs crates/core/src/fragments.rs crates/core/src/levels.rs crates/core/src/logstar.rs crates/core/src/partition.rs crates/core/src/treedp.rs crates/core/src/verify.rs crates/core/src/dist/mod.rs crates/core/src/dist/bfs.rs crates/core/src/dist/coloring.rs crates/core/src/dist/diamdom.rs crates/core/src/dist/election.rs crates/core/src/dist/executor.rs crates/core/src/dist/fastdom.rs crates/core/src/dist/fragments.rs crates/core/src/dist/partition1.rs crates/core/src/dist/treedp.rs

crates/core/src/lib.rs:
crates/core/src/balanced.rs:
crates/core/src/cluster.rs:
crates/core/src/clustering.rs:
crates/core/src/coloring.rs:
crates/core/src/fastdom.rs:
crates/core/src/fragments.rs:
crates/core/src/levels.rs:
crates/core/src/logstar.rs:
crates/core/src/partition.rs:
crates/core/src/treedp.rs:
crates/core/src/verify.rs:
crates/core/src/dist/mod.rs:
crates/core/src/dist/bfs.rs:
crates/core/src/dist/coloring.rs:
crates/core/src/dist/diamdom.rs:
crates/core/src/dist/election.rs:
crates/core/src/dist/executor.rs:
crates/core/src/dist/fastdom.rs:
crates/core/src/dist/fragments.rs:
crates/core/src/dist/partition1.rs:
crates/core/src/dist/treedp.rs:
