/root/repo/target/debug/deps/alpha_execution-83158bf843de7406.d: tests/alpha_execution.rs Cargo.toml

/root/repo/target/debug/deps/libalpha_execution-83158bf843de7406.rmeta: tests/alpha_execution.rs Cargo.toml

tests/alpha_execution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
