/root/repo/target/debug/deps/proptest_alpha-0d4cf062da2af927.d: tests/proptest_alpha.rs

/root/repo/target/debug/deps/proptest_alpha-0d4cf062da2af927: tests/proptest_alpha.rs

tests/proptest_alpha.rs:
