/root/repo/target/debug/deps/kdom_rng-3adc8f77b91b3a51.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/kdom_rng-3adc8f77b91b3a51: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
