/root/repo/target/debug/deps/engine-d6fba7b117b1f9ff.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-d6fba7b117b1f9ff.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
