/root/repo/target/debug/deps/proptest_domination-02a15c589a5b5ac3.d: tests/proptest_domination.rs

/root/repo/target/debug/deps/proptest_domination-02a15c589a5b5ac3: tests/proptest_domination.rs

tests/proptest_domination.rs:
