/root/repo/target/debug/deps/kdom_congest-506f26d5e16a0dc5.d: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/engine.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs

/root/repo/target/debug/deps/kdom_congest-506f26d5e16a0dc5: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/engine.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs

crates/congest/src/lib.rs:
crates/congest/src/alpha.rs:
crates/congest/src/engine.rs:
crates/congest/src/faults.rs:
crates/congest/src/reliable.rs:
crates/congest/src/report.rs:
crates/congest/src/sim.rs:
