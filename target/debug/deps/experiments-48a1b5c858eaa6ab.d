/root/repo/target/debug/deps/experiments-48a1b5c858eaa6ab.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-48a1b5c858eaa6ab.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
