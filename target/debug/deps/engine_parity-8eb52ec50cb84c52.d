/root/repo/target/debug/deps/engine_parity-8eb52ec50cb84c52.d: tests/engine_parity.rs

/root/repo/target/debug/deps/engine_parity-8eb52ec50cb84c52: tests/engine_parity.rs

tests/engine_parity.rs:
