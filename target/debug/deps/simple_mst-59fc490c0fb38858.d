/root/repo/target/debug/deps/simple_mst-59fc490c0fb38858.d: crates/bench/benches/simple_mst.rs Cargo.toml

/root/repo/target/debug/deps/libsimple_mst-59fc490c0fb38858.rmeta: crates/bench/benches/simple_mst.rs Cargo.toml

crates/bench/benches/simple_mst.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
