/root/repo/target/debug/deps/proptest_mst-8ea413964b27c891.d: tests/proptest_mst.rs

/root/repo/target/debug/deps/proptest_mst-8ea413964b27c891: tests/proptest_mst.rs

tests/proptest_mst.rs:
