/root/repo/target/debug/deps/balanced-5fa4d97c9259bb3e.d: crates/bench/benches/balanced.rs Cargo.toml

/root/repo/target/debug/deps/libbalanced-5fa4d97c9259bb3e.rmeta: crates/bench/benches/balanced.rs Cargo.toml

crates/bench/benches/balanced.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
