/root/repo/target/debug/deps/dbg_treedp-0b45753bfac362ab.d: tests/dbg_treedp.rs

/root/repo/target/debug/deps/dbg_treedp-0b45753bfac362ab: tests/dbg_treedp.rs

tests/dbg_treedp.rs:
