/root/repo/target/debug/deps/experiments-ba87b06bf6e10dee.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-ba87b06bf6e10dee.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
