/root/repo/target/debug/deps/pipeline-9e8ca53e38a10b6d.d: crates/bench/benches/pipeline.rs

/root/repo/target/debug/deps/libpipeline-9e8ca53e38a10b6d.rmeta: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
