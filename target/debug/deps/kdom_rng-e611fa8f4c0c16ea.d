/root/repo/target/debug/deps/kdom_rng-e611fa8f4c0c16ea.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libkdom_rng-e611fa8f4c0c16ea.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libkdom_rng-e611fa8f4c0c16ea.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
