/root/repo/target/debug/deps/balanced-26d46bf4130ff69e.d: crates/bench/benches/balanced.rs

/root/repo/target/debug/deps/libbalanced-26d46bf4130ff69e.rmeta: crates/bench/benches/balanced.rs

crates/bench/benches/balanced.rs:
