/root/repo/target/debug/deps/kdom_rng-2d1efdb9b35ef017.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libkdom_rng-2d1efdb9b35ef017.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
