/root/repo/target/debug/deps/kdom_bench-d63480e2c01388bf.d: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libkdom_bench-d63480e2c01388bf.rlib: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libkdom_bench-d63480e2c01388bf.rmeta: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/exps.rs:
crates/bench/src/harness.rs:
crates/bench/src/table.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
