/root/repo/target/debug/deps/fault_recovery-be7d90fdc3497e4e.d: tests/fault_recovery.rs

/root/repo/target/debug/deps/fault_recovery-be7d90fdc3497e4e: tests/fault_recovery.rs

tests/fault_recovery.rs:
