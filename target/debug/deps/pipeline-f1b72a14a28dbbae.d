/root/repo/target/debug/deps/pipeline-f1b72a14a28dbbae.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-f1b72a14a28dbbae.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
