/root/repo/target/debug/deps/fault_recovery-f86e39d99002667b.d: tests/fault_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libfault_recovery-f86e39d99002667b.rmeta: tests/fault_recovery.rs Cargo.toml

tests/fault_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
