/root/repo/target/debug/deps/experiments-a5e567a929a06ab2.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-a5e567a929a06ab2: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
