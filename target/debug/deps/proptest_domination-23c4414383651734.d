/root/repo/target/debug/deps/proptest_domination-23c4414383651734.d: tests/proptest_domination.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_domination-23c4414383651734.rmeta: tests/proptest_domination.rs Cargo.toml

tests/proptest_domination.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
