/root/repo/target/debug/deps/proptest_substrates-fbc9e432881caa34.d: tests/proptest_substrates.rs

/root/repo/target/debug/deps/proptest_substrates-fbc9e432881caa34: tests/proptest_substrates.rs

tests/proptest_substrates.rs:
