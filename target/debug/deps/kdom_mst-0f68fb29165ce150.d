/root/repo/target/debug/deps/kdom_mst-0f68fb29165ce150.d: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

/root/repo/target/debug/deps/libkdom_mst-0f68fb29165ce150.rmeta: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

crates/mst/src/lib.rs:
crates/mst/src/baselines.rs:
crates/mst/src/fastmst.rs:
crates/mst/src/pipeline.rs:
