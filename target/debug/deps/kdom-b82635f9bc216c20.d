/root/repo/target/debug/deps/kdom-b82635f9bc216c20.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libkdom-b82635f9bc216c20.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
