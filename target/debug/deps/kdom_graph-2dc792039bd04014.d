/root/repo/target/debug/deps/kdom_graph-2dc792039bd04014.d: crates/graph/src/lib.rs crates/graph/src/dsu.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/mst_ref.rs crates/graph/src/properties.rs crates/graph/src/tree.rs

/root/repo/target/debug/deps/libkdom_graph-2dc792039bd04014.rlib: crates/graph/src/lib.rs crates/graph/src/dsu.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/mst_ref.rs crates/graph/src/properties.rs crates/graph/src/tree.rs

/root/repo/target/debug/deps/libkdom_graph-2dc792039bd04014.rmeta: crates/graph/src/lib.rs crates/graph/src/dsu.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/mst_ref.rs crates/graph/src/properties.rs crates/graph/src/tree.rs

crates/graph/src/lib.rs:
crates/graph/src/dsu.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/mst_ref.rs:
crates/graph/src/properties.rs:
crates/graph/src/tree.rs:
