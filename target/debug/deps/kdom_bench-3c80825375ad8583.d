/root/repo/target/debug/deps/kdom_bench-3c80825375ad8583.d: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libkdom_bench-3c80825375ad8583.rmeta: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/exps.rs:
crates/bench/src/harness.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
