/root/repo/target/debug/deps/kdom_bench-de53ae73db73ddfd.d: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libkdom_bench-de53ae73db73ddfd.rmeta: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/exps.rs:
crates/bench/src/harness.rs:
crates/bench/src/table.rs:
