/root/repo/target/debug/deps/proptest_mst-d9d35a7b71978e03.d: tests/proptest_mst.rs

/root/repo/target/debug/deps/libproptest_mst-d9d35a7b71978e03.rmeta: tests/proptest_mst.rs

tests/proptest_mst.rs:
