/root/repo/target/debug/deps/proptest_alpha-042a20f460da56d4.d: tests/proptest_alpha.rs

/root/repo/target/debug/deps/libproptest_alpha-042a20f460da56d4.rmeta: tests/proptest_alpha.rs

tests/proptest_alpha.rs:
