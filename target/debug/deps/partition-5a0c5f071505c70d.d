/root/repo/target/debug/deps/partition-5a0c5f071505c70d.d: crates/bench/benches/partition.rs

/root/repo/target/debug/deps/libpartition-5a0c5f071505c70d.rmeta: crates/bench/benches/partition.rs

crates/bench/benches/partition.rs:
