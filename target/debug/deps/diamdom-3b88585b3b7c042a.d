/root/repo/target/debug/deps/diamdom-3b88585b3b7c042a.d: crates/bench/benches/diamdom.rs Cargo.toml

/root/repo/target/debug/deps/libdiamdom-3b88585b3b7c042a.rmeta: crates/bench/benches/diamdom.rs Cargo.toml

crates/bench/benches/diamdom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
