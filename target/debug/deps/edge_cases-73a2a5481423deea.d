/root/repo/target/debug/deps/edge_cases-73a2a5481423deea.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-73a2a5481423deea: tests/edge_cases.rs

tests/edge_cases.rs:
