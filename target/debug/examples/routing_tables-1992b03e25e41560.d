/root/repo/target/debug/examples/routing_tables-1992b03e25e41560.d: examples/routing_tables.rs Cargo.toml

/root/repo/target/debug/examples/librouting_tables-1992b03e25e41560.rmeta: examples/routing_tables.rs Cargo.toml

examples/routing_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
