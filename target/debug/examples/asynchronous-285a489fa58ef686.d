/root/repo/target/debug/examples/asynchronous-285a489fa58ef686.d: examples/asynchronous.rs Cargo.toml

/root/repo/target/debug/examples/libasynchronous-285a489fa58ef686.rmeta: examples/asynchronous.rs Cargo.toml

examples/asynchronous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
