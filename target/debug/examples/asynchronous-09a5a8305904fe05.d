/root/repo/target/debug/examples/asynchronous-09a5a8305904fe05.d: examples/asynchronous.rs

/root/repo/target/debug/examples/libasynchronous-09a5a8305904fe05.rmeta: examples/asynchronous.rs

examples/asynchronous.rs:
