/root/repo/target/debug/examples/quickstart-af1425acd06c4ebe.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-af1425acd06c4ebe: examples/quickstart.rs

examples/quickstart.rs:
