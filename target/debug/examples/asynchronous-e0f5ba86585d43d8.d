/root/repo/target/debug/examples/asynchronous-e0f5ba86585d43d8.d: examples/asynchronous.rs

/root/repo/target/debug/examples/asynchronous-e0f5ba86585d43d8: examples/asynchronous.rs

examples/asynchronous.rs:
