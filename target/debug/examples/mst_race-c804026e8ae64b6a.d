/root/repo/target/debug/examples/mst_race-c804026e8ae64b6a.d: examples/mst_race.rs

/root/repo/target/debug/examples/mst_race-c804026e8ae64b6a: examples/mst_race.rs

examples/mst_race.rs:
