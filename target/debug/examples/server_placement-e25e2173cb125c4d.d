/root/repo/target/debug/examples/server_placement-e25e2173cb125c4d.d: examples/server_placement.rs Cargo.toml

/root/repo/target/debug/examples/libserver_placement-e25e2173cb125c4d.rmeta: examples/server_placement.rs Cargo.toml

examples/server_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
