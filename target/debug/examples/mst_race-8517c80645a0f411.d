/root/repo/target/debug/examples/mst_race-8517c80645a0f411.d: examples/mst_race.rs Cargo.toml

/root/repo/target/debug/examples/libmst_race-8517c80645a0f411.rmeta: examples/mst_race.rs Cargo.toml

examples/mst_race.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
