/root/repo/target/debug/examples/quickstart-a0d86b376ce565c6.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-a0d86b376ce565c6.rmeta: examples/quickstart.rs

examples/quickstart.rs:
