/root/repo/target/debug/examples/server_placement-9b6ff625e2d77877.d: examples/server_placement.rs

/root/repo/target/debug/examples/server_placement-9b6ff625e2d77877: examples/server_placement.rs

examples/server_placement.rs:
