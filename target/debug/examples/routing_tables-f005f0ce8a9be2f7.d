/root/repo/target/debug/examples/routing_tables-f005f0ce8a9be2f7.d: examples/routing_tables.rs

/root/repo/target/debug/examples/routing_tables-f005f0ce8a9be2f7: examples/routing_tables.rs

examples/routing_tables.rs:
