/root/repo/target/debug/examples/server_placement-263eb78914bee6d7.d: examples/server_placement.rs

/root/repo/target/debug/examples/libserver_placement-263eb78914bee6d7.rmeta: examples/server_placement.rs

examples/server_placement.rs:
