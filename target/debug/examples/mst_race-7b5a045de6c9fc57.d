/root/repo/target/debug/examples/mst_race-7b5a045de6c9fc57.d: examples/mst_race.rs

/root/repo/target/debug/examples/libmst_race-7b5a045de6c9fc57.rmeta: examples/mst_race.rs

examples/mst_race.rs:
