/root/repo/target/debug/examples/lossy_recovery-ad4502ae91c3f11b.d: examples/lossy_recovery.rs Cargo.toml

/root/repo/target/debug/examples/liblossy_recovery-ad4502ae91c3f11b.rmeta: examples/lossy_recovery.rs Cargo.toml

examples/lossy_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
