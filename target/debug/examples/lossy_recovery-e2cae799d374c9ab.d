/root/repo/target/debug/examples/lossy_recovery-e2cae799d374c9ab.d: examples/lossy_recovery.rs

/root/repo/target/debug/examples/lossy_recovery-e2cae799d374c9ab: examples/lossy_recovery.rs

examples/lossy_recovery.rs:
