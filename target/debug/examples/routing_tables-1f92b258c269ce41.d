/root/repo/target/debug/examples/routing_tables-1f92b258c269ce41.d: examples/routing_tables.rs

/root/repo/target/debug/examples/librouting_tables-1f92b258c269ce41.rmeta: examples/routing_tables.rs

examples/routing_tables.rs:
