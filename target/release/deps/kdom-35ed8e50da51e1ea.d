/root/repo/target/release/deps/kdom-35ed8e50da51e1ea.d: src/lib.rs

/root/repo/target/release/deps/libkdom-35ed8e50da51e1ea.rlib: src/lib.rs

/root/repo/target/release/deps/libkdom-35ed8e50da51e1ea.rmeta: src/lib.rs

src/lib.rs:
