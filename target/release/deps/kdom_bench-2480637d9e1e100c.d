/root/repo/target/release/deps/kdom_bench-2480637d9e1e100c.d: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libkdom_bench-2480637d9e1e100c.rlib: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libkdom_bench-2480637d9e1e100c.rmeta: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/exps.rs:
crates/bench/src/harness.rs:
crates/bench/src/table.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
