/root/repo/target/release/deps/diamdom-73b957eae273355e.d: crates/bench/benches/diamdom.rs

/root/repo/target/release/deps/diamdom-73b957eae273355e: crates/bench/benches/diamdom.rs

crates/bench/benches/diamdom.rs:
