/root/repo/target/release/deps/kdom_congest-30ffe45ac29d2374.d: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/engine.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs

/root/repo/target/release/deps/libkdom_congest-30ffe45ac29d2374.rlib: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/engine.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs

/root/repo/target/release/deps/libkdom_congest-30ffe45ac29d2374.rmeta: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/engine.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs

crates/congest/src/lib.rs:
crates/congest/src/alpha.rs:
crates/congest/src/engine.rs:
crates/congest/src/faults.rs:
crates/congest/src/reliable.rs:
crates/congest/src/report.rs:
crates/congest/src/sim.rs:
