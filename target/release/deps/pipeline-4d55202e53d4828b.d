/root/repo/target/release/deps/pipeline-4d55202e53d4828b.d: crates/bench/benches/pipeline.rs

/root/repo/target/release/deps/pipeline-4d55202e53d4828b: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
