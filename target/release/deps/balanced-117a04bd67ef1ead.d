/root/repo/target/release/deps/balanced-117a04bd67ef1ead.d: crates/bench/benches/balanced.rs

/root/repo/target/release/deps/balanced-117a04bd67ef1ead: crates/bench/benches/balanced.rs

crates/bench/benches/balanced.rs:
