/root/repo/target/release/deps/kdom-58ae58789a801395.d: src/lib.rs

/root/repo/target/release/deps/kdom-58ae58789a801395: src/lib.rs

src/lib.rs:
