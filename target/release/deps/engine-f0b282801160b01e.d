/root/repo/target/release/deps/engine-f0b282801160b01e.d: crates/bench/benches/engine.rs

/root/repo/target/release/deps/engine-f0b282801160b01e: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
