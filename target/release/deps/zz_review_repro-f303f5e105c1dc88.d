/root/repo/target/release/deps/zz_review_repro-f303f5e105c1dc88.d: tests/zz_review_repro.rs

/root/repo/target/release/deps/zz_review_repro-f303f5e105c1dc88: tests/zz_review_repro.rs

tests/zz_review_repro.rs:
