/root/repo/target/release/deps/kdom_rng-151672d8c3b9341f.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/kdom_rng-151672d8c3b9341f: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
