/root/repo/target/release/deps/kdom_rng-0ea24e3876fd6908.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libkdom_rng-0ea24e3876fd6908.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libkdom_rng-0ea24e3876fd6908.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
