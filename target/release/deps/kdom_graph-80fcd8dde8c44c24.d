/root/repo/target/release/deps/kdom_graph-80fcd8dde8c44c24.d: crates/graph/src/lib.rs crates/graph/src/dsu.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/mst_ref.rs crates/graph/src/properties.rs crates/graph/src/tree.rs

/root/repo/target/release/deps/libkdom_graph-80fcd8dde8c44c24.rlib: crates/graph/src/lib.rs crates/graph/src/dsu.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/mst_ref.rs crates/graph/src/properties.rs crates/graph/src/tree.rs

/root/repo/target/release/deps/libkdom_graph-80fcd8dde8c44c24.rmeta: crates/graph/src/lib.rs crates/graph/src/dsu.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/mst_ref.rs crates/graph/src/properties.rs crates/graph/src/tree.rs

crates/graph/src/lib.rs:
crates/graph/src/dsu.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/mst_ref.rs:
crates/graph/src/properties.rs:
crates/graph/src/tree.rs:
