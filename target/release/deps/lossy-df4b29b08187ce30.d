/root/repo/target/release/deps/lossy-df4b29b08187ce30.d: crates/bench/benches/lossy.rs

/root/repo/target/release/deps/lossy-df4b29b08187ce30: crates/bench/benches/lossy.rs

crates/bench/benches/lossy.rs:
