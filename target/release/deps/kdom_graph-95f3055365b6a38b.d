/root/repo/target/release/deps/kdom_graph-95f3055365b6a38b.d: crates/graph/src/lib.rs crates/graph/src/dsu.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/mst_ref.rs crates/graph/src/properties.rs crates/graph/src/tree.rs

/root/repo/target/release/deps/kdom_graph-95f3055365b6a38b: crates/graph/src/lib.rs crates/graph/src/dsu.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/mst_ref.rs crates/graph/src/properties.rs crates/graph/src/tree.rs

crates/graph/src/lib.rs:
crates/graph/src/dsu.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/mst_ref.rs:
crates/graph/src/properties.rs:
crates/graph/src/tree.rs:
