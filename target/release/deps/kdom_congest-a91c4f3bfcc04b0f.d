/root/repo/target/release/deps/kdom_congest-a91c4f3bfcc04b0f.d: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/engine.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs

/root/repo/target/release/deps/kdom_congest-a91c4f3bfcc04b0f: crates/congest/src/lib.rs crates/congest/src/alpha.rs crates/congest/src/engine.rs crates/congest/src/faults.rs crates/congest/src/reliable.rs crates/congest/src/report.rs crates/congest/src/sim.rs

crates/congest/src/lib.rs:
crates/congest/src/alpha.rs:
crates/congest/src/engine.rs:
crates/congest/src/faults.rs:
crates/congest/src/reliable.rs:
crates/congest/src/report.rs:
crates/congest/src/sim.rs:
