/root/repo/target/release/deps/simple_mst-fd0b2512f4c1ccbd.d: crates/bench/benches/simple_mst.rs

/root/repo/target/release/deps/simple_mst-fd0b2512f4c1ccbd: crates/bench/benches/simple_mst.rs

crates/bench/benches/simple_mst.rs:
