/root/repo/target/release/deps/experiments-7213fac5d7d66371.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-7213fac5d7d66371: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
