/root/repo/target/release/deps/kdom_mst-b9da84aed7431e57.d: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

/root/repo/target/release/deps/libkdom_mst-b9da84aed7431e57.rlib: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

/root/repo/target/release/deps/libkdom_mst-b9da84aed7431e57.rmeta: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

crates/mst/src/lib.rs:
crates/mst/src/baselines.rs:
crates/mst/src/fastmst.rs:
crates/mst/src/pipeline.rs:
