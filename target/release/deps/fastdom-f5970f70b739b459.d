/root/repo/target/release/deps/fastdom-f5970f70b739b459.d: crates/bench/benches/fastdom.rs

/root/repo/target/release/deps/fastdom-f5970f70b739b459: crates/bench/benches/fastdom.rs

crates/bench/benches/fastdom.rs:
