/root/repo/target/release/deps/engine_parity-007b354baa3b1ea1.d: tests/engine_parity.rs

/root/repo/target/release/deps/engine_parity-007b354baa3b1ea1: tests/engine_parity.rs

tests/engine_parity.rs:
