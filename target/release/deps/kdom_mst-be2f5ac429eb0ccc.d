/root/repo/target/release/deps/kdom_mst-be2f5ac429eb0ccc.d: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

/root/repo/target/release/deps/kdom_mst-be2f5ac429eb0ccc: crates/mst/src/lib.rs crates/mst/src/baselines.rs crates/mst/src/fastmst.rs crates/mst/src/pipeline.rs

crates/mst/src/lib.rs:
crates/mst/src/baselines.rs:
crates/mst/src/fastmst.rs:
crates/mst/src/pipeline.rs:
