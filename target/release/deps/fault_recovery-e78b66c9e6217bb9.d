/root/repo/target/release/deps/fault_recovery-e78b66c9e6217bb9.d: tests/fault_recovery.rs

/root/repo/target/release/deps/fault_recovery-e78b66c9e6217bb9: tests/fault_recovery.rs

tests/fault_recovery.rs:
