/root/repo/target/release/deps/partition-f55600068b4fa813.d: crates/bench/benches/partition.rs

/root/repo/target/release/deps/partition-f55600068b4fa813: crates/bench/benches/partition.rs

crates/bench/benches/partition.rs:
