/root/repo/target/release/deps/experiments-dde698299216b5ae.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-dde698299216b5ae: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
