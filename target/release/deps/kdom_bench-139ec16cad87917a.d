/root/repo/target/release/deps/kdom_bench-139ec16cad87917a.d: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/release/deps/kdom_bench-139ec16cad87917a: crates/bench/src/lib.rs crates/bench/src/exps.rs crates/bench/src/harness.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/exps.rs:
crates/bench/src/harness.rs:
crates/bench/src/table.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
