/root/repo/target/release/deps/fastmst-cf9e70d5500c67e1.d: crates/bench/benches/fastmst.rs

/root/repo/target/release/deps/fastmst-cf9e70d5500c67e1: crates/bench/benches/fastmst.rs

crates/bench/benches/fastmst.rs:
