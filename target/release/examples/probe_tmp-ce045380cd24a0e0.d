/root/repo/target/release/examples/probe_tmp-ce045380cd24a0e0.d: examples/probe_tmp.rs

/root/repo/target/release/examples/probe_tmp-ce045380cd24a0e0: examples/probe_tmp.rs

examples/probe_tmp.rs:
