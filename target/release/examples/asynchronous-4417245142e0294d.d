/root/repo/target/release/examples/asynchronous-4417245142e0294d.d: examples/asynchronous.rs

/root/repo/target/release/examples/asynchronous-4417245142e0294d: examples/asynchronous.rs

examples/asynchronous.rs:
