/root/repo/target/release/examples/mst_race-74b1f91132767656.d: examples/mst_race.rs

/root/repo/target/release/examples/mst_race-74b1f91132767656: examples/mst_race.rs

examples/mst_race.rs:
