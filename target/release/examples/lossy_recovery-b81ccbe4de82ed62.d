/root/repo/target/release/examples/lossy_recovery-b81ccbe4de82ed62.d: examples/lossy_recovery.rs

/root/repo/target/release/examples/lossy_recovery-b81ccbe4de82ed62: examples/lossy_recovery.rs

examples/lossy_recovery.rs:
