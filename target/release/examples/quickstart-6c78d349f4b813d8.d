/root/repo/target/release/examples/quickstart-6c78d349f4b813d8.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6c78d349f4b813d8: examples/quickstart.rs

examples/quickstart.rs:
