//! kdom-as-a-service: a socket server in front of the job scheduler.
//!
//! The server owns a [`JobPool`] (and through it the content-addressed
//! result cache) plus a registry of graphs keyed by
//! [`Graph::fingerprint`]. Clients install graphs (generated from a
//! `FAMILY:N:SEED` spec or uploaded edge-by-edge), submit single jobs or
//! whole sweeps, wait for byte-exact [`JobOutput`]s, stream per-job
//! JSONL trace events, and read scheduler/cache statistics.
//!
//! ## Wire protocol
//!
//! Every message reuses the engine transport's length-prefixed word
//! framing ([`frame_to_bytes`] / [`read_frame`]), so the server shares
//! its corruption checks (magic, length caps) with the shard transport.
//! Commands and replies are UTF-8 text packed little-endian into the
//! frame words; only graph uploads and harvested outputs travel as raw
//! word frames. One request, one reply — except `TRACE`, which streams
//! line batches and closes with a literal `END` frame.
//!
//! | request | reply |
//! |---|---|
//! | `PING` | `OK pong` |
//! | `GRAPH FAMILY:N:SEED` | `OK graph <fp> nodes <n> edges <m>` |
//! | `UPLOAD <n> <m>` + word frame `[id]*n [u v w]*m` | `OK graph <fp> …` |
//! | `SUBMIT <fp> <spec tokens>` | `OK job <id>` |
//! | `SWEEP <fp> <spec tokens + algos=/ks=/seeds=>` | `OK jobs <id,…>` |
//! | `WAIT <id>` | `OK done …report…` + outputs word frame |
//! | `TRACE <id>` | line-batch frames, then `END` |
//! | `STATS` | `OK stats k=v …` |
//! | `SHUTDOWN` | `OK bye` (server drains and exits) |
//!
//! Failures are a single `ERR <reason>` frame; the connection stays up.

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use kdom_congest::transport::{frame_to_bytes, read_frame, Conn, CoordListener, Endpoint};
use kdom_congest::{
    Algo, CacheStats, ExecSpec, FaultPlan, JobHandle, JobPool, JobStatus, PoolStats, RunReport,
    RunSpec, Scheduling, SweepSpec,
};
use kdom_graph::generators::Family;
use kdom_graph::graph::EdgeRef;
use kdom_graph::{EdgeId, Graph, NodeId};

/// How long a streaming trace subscriber sleeps between polls of the
/// job's sink.
const TRACE_POLL: Duration = Duration::from_millis(5);

/// How long the accept loop sleeps when the backlog is empty.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

// ---------------------------------------------------------------------------
// Text frames
// ---------------------------------------------------------------------------

/// Packs `text` as UTF-8 into the transport's word framing and writes
/// it to `w`: bytes land little-endian in consecutive words, the bit
/// length records the exact byte count.
fn send_text(w: &mut impl Write, text: &str) -> io::Result<()> {
    let bytes = text.as_bytes();
    let mut words = vec![0u64; bytes.len().div_ceil(8)];
    for (i, &b) in bytes.iter().enumerate() {
        words[i / 8] |= u64::from(b) << ((i % 8) * 8);
    }
    let mut out = Vec::new();
    frame_to_bytes(&words, bytes.len() as u64 * 8, &mut out);
    w.write_all(&out)
}

/// Writes a raw word frame (graph uploads, harvested outputs).
fn send_words(w: &mut impl Write, words: &[u64]) -> io::Result<()> {
    let mut out = Vec::new();
    frame_to_bytes(words, words.len() as u64 * 64, &mut out);
    w.write_all(&out)
}

/// Reads one frame and unpacks it as UTF-8 text (the inverse of
/// [`send_text`]).
fn recv_text(r: &mut impl io::Read, words: &mut Vec<u64>) -> io::Result<String> {
    let bits = read_frame(r, words)?;
    if bits % 8 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("text frame of {bits} bits is not whole bytes"),
        ));
    }
    let nbytes = (bits / 8) as usize;
    let mut bytes = Vec::with_capacity(nbytes);
    for i in 0..nbytes {
        bytes.push((words[i / 8] >> ((i % 8) * 8)) as u8);
    }
    String::from_utf8(bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))
}

// ---------------------------------------------------------------------------
// Spec and report token codecs
// ---------------------------------------------------------------------------

/// Serializes a [`RunSpec`] as `key=value` tokens for `SUBMIT`/`SWEEP`.
/// Every cache-key field crosses the wire, so the server-side spec
/// hashes identically to the client's. Float fault probabilities travel
/// as IEEE-754 bit patterns in hex — byte-exact, no decimal round trip.
///
/// # Errors
///
/// Structured fault plans (crashes, link outages, churn epochs) have no
/// token form; specs carrying them are rejected here rather than
/// silently stripped.
pub fn spec_to_tokens(spec: &RunSpec) -> Result<String, String> {
    let f = &spec.faults;
    if !(f.crashes.is_empty() && f.link_downs.is_empty() && f.epochs.is_empty()) {
        return Err(
            "structured fault plans (crashes/link-downs/churn) are not wire-encodable".into(),
        );
    }
    let exec = match spec.exec {
        ExecSpec::Sync => "sync".to_string(),
        ExecSpec::ReliableAlpha { max_delay } => format!("alpha:{max_delay}"),
    };
    let sched = match spec.scheduling {
        Scheduling::FullScan => "full-scan",
        Scheduling::ActiveSet => "active-set",
    };
    Ok(format!(
        "algo={} k={} seed={} threads={} sched={} ff={} dense={} shard={} wire={} exec={} \
         trace={} fseed={} fdrop={:016x} fdup={:016x} fdelay={}",
        spec.algo.label(),
        spec.k,
        spec.seed,
        spec.threads,
        sched,
        u8::from(spec.fast_forward),
        spec.dense_pct,
        spec.shard_min,
        u8::from(spec.wire_exact),
        exec,
        u8::from(spec.trace),
        f.seed,
        f.drop_prob.to_bits(),
        f.dup_prob.to_bits(),
        f.max_extra_delay,
    ))
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    v.parse()
        .map_err(|e| format!("{key}={v:?} did not parse: {e}"))
}

fn parse_bool(key: &str, v: &str) -> Result<bool, String> {
    match v {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(format!("{key}={v:?} is not 0 or 1")),
    }
}

/// Parses the tokens produced by [`spec_to_tokens`] back into a
/// [`RunSpec`]. Unknown keys are an error — a misspelled field must not
/// silently fall back to a default and then get *cached* under the
/// wrong content address.
///
/// # Errors
///
/// On any unknown key or malformed value, naming both.
pub fn spec_from_tokens<'a>(tokens: impl Iterator<Item = &'a str>) -> Result<RunSpec, String> {
    let mut spec = RunSpec::default();
    let mut fseed = 0u64;
    let mut fdrop = 0u64;
    let mut fdup = 0u64;
    let mut fdelay = 0u64;
    for tok in tokens {
        let (key, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("token {tok:?} is not key=value"))?;
        match key {
            "algo" => spec.algo = v.parse()?,
            "k" => spec.k = parse_num(key, v)?,
            "seed" => spec.seed = parse_num(key, v)?,
            "threads" => spec.threads = parse_num::<usize>(key, v)?.max(1),
            "sched" => {
                spec.scheduling = match v {
                    "full-scan" => Scheduling::FullScan,
                    "active-set" => Scheduling::ActiveSet,
                    _ => return Err(format!("sched={v:?} is not full-scan or active-set")),
                }
            }
            "ff" => spec.fast_forward = parse_bool(key, v)?,
            "dense" => spec.dense_pct = parse_num(key, v)?,
            "shard" => spec.shard_min = parse_num(key, v)?,
            "wire" => spec.wire_exact = parse_bool(key, v)?,
            "exec" => {
                spec.exec = match v.split_once(':') {
                    None if v == "sync" => ExecSpec::Sync,
                    Some(("alpha", d)) => ExecSpec::ReliableAlpha {
                        max_delay: parse_num(key, d)?,
                    },
                    _ => return Err(format!("exec={v:?} is not sync or alpha:DELAY")),
                }
            }
            "trace" => spec.trace = parse_bool(key, v)?,
            "fseed" => fseed = parse_num(key, v)?,
            "fdrop" => {
                fdrop = u64::from_str_radix(v, 16).map_err(|e| format!("fdrop={v:?}: {e}"))?
            }
            "fdup" => fdup = u64::from_str_radix(v, 16).map_err(|e| format!("fdup={v:?}: {e}"))?,
            "fdelay" => fdelay = parse_num(key, v)?,
            _ => return Err(format!("unknown spec token {key:?}")),
        }
    }
    let mut plan = FaultPlan::new(fseed);
    plan.drop_prob = f64::from_bits(fdrop);
    plan.dup_prob = f64::from_bits(fdup);
    plan.max_extra_delay = fdelay;
    spec.faults = plan;
    Ok(spec)
}

fn report_to_tokens(r: &RunReport) -> String {
    format!(
        "rounds={} messages={} total_bits={} max_message_bits={} peak_messages_per_round={} \
         dropped_messages={} duplicated_messages={} retransmissions={} peak_memory_bytes={}",
        r.rounds,
        r.messages,
        r.total_bits,
        r.max_message_bits,
        r.peak_messages_per_round,
        r.dropped_messages,
        r.duplicated_messages,
        r.retransmissions,
        r.peak_memory_bytes
    )
}

fn report_from_tokens<'a>(tokens: impl Iterator<Item = &'a str>) -> Result<RunReport, String> {
    let mut r = RunReport::default();
    for tok in tokens {
        let (key, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("token {tok:?} is not key=value"))?;
        let v: u64 = parse_num(key, v)?;
        match key {
            "rounds" => r.rounds = v,
            "messages" => r.messages = v,
            "total_bits" => r.total_bits = v,
            "max_message_bits" => r.max_message_bits = v,
            "peak_messages_per_round" => r.peak_messages_per_round = v,
            "dropped_messages" => r.dropped_messages = v,
            "duplicated_messages" => r.duplicated_messages = v,
            "retransmissions" => r.retransmissions = v,
            "peak_memory_bytes" => r.peak_memory_bytes = v,
            _ => return Err(format!("unknown report token {key:?}")),
        }
    }
    Ok(r)
}

/// Builds a graph from the `FAMILY:N:SEED` dialect the `kdom-shard`
/// launcher introduced (`grid:2500:42`, `gnp:500:7`, …).
///
/// # Errors
///
/// Names the malformed component (unknown family, bad node count or
/// seed).
pub fn parse_graph_spec(s: &str) -> Result<Graph, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let [family, n, seed] = parts.as_slice() else {
        return Err(format!("graph spec {s:?} is not FAMILY:N:SEED"));
    };
    let family = match *family {
        "grid" => Family::Grid,
        "path" => Family::Path,
        "star" => Family::Star,
        "btree" => Family::BalancedBinary,
        "rtree" => Family::RandomTree,
        "caterpillar" => Family::Caterpillar,
        "gnp" => Family::Gnp,
        other => return Err(format!("unknown graph family {other:?}")),
    };
    let n = n.parse().map_err(|e| format!("bad node count: {e}"))?;
    let seed = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
    Ok(family.generate(n, seed))
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

struct ServerState {
    pool: JobPool,
    graphs: Mutex<HashMap<u64, Arc<Graph>>>,
    jobs: Mutex<HashMap<u64, JobHandle>>,
    shutdown: AtomicBool,
}

/// The kdom job server: a listening socket in front of a [`JobPool`].
pub struct Server {
    listener: CoordListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds a server on `listen` (a TCP port of `0` picks an ephemeral
    /// one — read it back with [`Server::local_endpoint`]). The pool —
    /// and with it the worker count, cache budget, and the [`Runner`]
    /// dispatching specs onto algorithms — is supplied by the caller;
    /// the production binary passes `kdom_mst::service::runner()`.
    ///
    /// [`Runner`]: kdom_congest::Runner
    ///
    /// # Errors
    ///
    /// Any socket-level bind failure.
    pub fn bind(listen: &Endpoint, pool: JobPool) -> io::Result<Server> {
        let listener = CoordListener::bind(listen)?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                pool,
                graphs: Mutex::new(HashMap::new()),
                jobs: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The endpoint the server actually listens on.
    ///
    /// # Errors
    ///
    /// If the socket address cannot be read back.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        self.listener.local_endpoint()
    }

    /// Accepts and serves clients until one sends `SHUTDOWN`, then
    /// drains the pool (queued jobs still finish) and returns. Each
    /// client gets its own thread; a client error drops only that
    /// connection.
    ///
    /// # Errors
    ///
    /// Only on listener-level failures; per-client errors are contained.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        while !self.state.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok(conn) => {
                    let state = Arc::clone(&self.state);
                    std::thread::Builder::new()
                        .name("kdom-serve-client".into())
                        .spawn(move || handle_client(&state, conn))
                        .expect("spawn client thread");
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                Err(e) => return Err(e),
            }
        }
        // dropping self.state's pool (last Arc may be held briefly by a
        // client thread) drains queued jobs and joins the workers
        Ok(())
    }
}

fn register_graph(state: &ServerState, g: Graph) -> String {
    let fp = g.fingerprint();
    let (n, m) = (g.node_count(), g.edge_count());
    state
        .graphs
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .entry(fp)
        .or_insert_with(|| Arc::new(g));
    format!("OK graph {fp:016x} nodes {n} edges {m}")
}

fn lookup_graph(state: &ServerState, fp_hex: &str) -> Result<Arc<Graph>, String> {
    let fp = u64::from_str_radix(fp_hex, 16)
        .map_err(|e| format!("graph fingerprint {fp_hex:?}: {e}"))?;
    state
        .graphs
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get(&fp)
        .cloned()
        .ok_or_else(|| format!("unknown graph {fp_hex} (install it with GRAPH or UPLOAD first)"))
}

fn lookup_job(state: &ServerState, id_str: &str) -> Result<JobHandle, String> {
    let id: u64 = id_str
        .parse()
        .map_err(|e| format!("job id {id_str:?}: {e}"))?;
    state
        .jobs
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get(&id)
        .cloned()
        .ok_or_else(|| format!("unknown job {id}"))
}

fn track_job(state: &ServerState, handle: &JobHandle) {
    state
        .jobs
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(handle.id(), handle.clone());
}

/// Handles `UPLOAD n m`: reads the `[id]*n [u v w]*m` word frame and
/// builds the graph. Node ids travel explicitly (the generators assign
/// random distinct ids, and [`Graph::fingerprint`] covers them);
/// consecutive edge ids are implicit in frame order.
fn handle_upload(
    state: &ServerState,
    conn: &mut Conn,
    words: &mut Vec<u64>,
    n: &str,
    m: &str,
) -> io::Result<String> {
    let n: usize = match n.parse() {
        Ok(n) => n,
        Err(e) => return Ok(format!("ERR bad node count {n:?}: {e}")),
    };
    let m: usize = match m.parse() {
        Ok(m) => m,
        Err(e) => return Ok(format!("ERR bad edge count {m:?}: {e}")),
    };
    // the payload frame must be consumed even if the header was odd, or
    // the stream would desynchronize — hence reading before validating
    read_frame(conn, words)?;
    if words.len() != n + 3 * m {
        return Ok(format!(
            "ERR graph frame has {} words, expected {n}+3*{m}",
            words.len()
        ));
    }
    let ids = words[..n].to_vec();
    let mut edges = Vec::with_capacity(m);
    for (i, e) in words[n..].chunks_exact(3).enumerate() {
        let (u, v) = (e[0] as usize, e[1] as usize);
        if u >= n || v >= n || u == v {
            return Ok(format!("ERR edge {i} ({u},{v}) is invalid for {n} nodes"));
        }
        edges.push(EdgeRef {
            id: EdgeId(i),
            u: NodeId(u),
            v: NodeId(v),
            weight: e[2],
        });
    }
    let g = match std::panic::catch_unwind(move || Graph::from_edges(n, edges, Some(ids))) {
        Ok(g) => g,
        Err(_) => return Ok("ERR edge list rejected (duplicate or parallel edges?)".into()),
    };
    Ok(register_graph(state, g))
}

/// Splits the sweep axis tokens (`algos=`, `ks=`, `seeds=`) out of a
/// `SWEEP` token stream and builds the [`SweepSpec`] around the
/// remaining base-spec tokens.
fn parse_sweep<'a>(tokens: impl Iterator<Item = &'a str>) -> Result<SweepSpec, String> {
    let mut base_tokens = Vec::new();
    let mut algos = Vec::new();
    let mut ks = Vec::new();
    let mut seeds = Vec::new();
    for tok in tokens {
        match tok.split_once('=') {
            Some(("algos", v)) => {
                for a in v.split(',') {
                    algos.push(a.parse::<Algo>()?);
                }
            }
            Some(("ks", v)) => {
                for k in v.split(',') {
                    ks.push(parse_num::<u64>("ks", k)?);
                }
            }
            Some(("seeds", v)) => {
                for s in v.split(',') {
                    seeds.push(parse_num::<u64>("seeds", s)?);
                }
            }
            _ => base_tokens.push(tok),
        }
    }
    let base = spec_from_tokens(base_tokens.into_iter())?;
    Ok(SweepSpec::new(base)
        .over_algos(&algos)
        .over_ks(&ks)
        .over_seeds(&seeds))
}

/// Streams a job's trace to `conn`: line batches as they appear in the
/// job's sink, a final drain once the job settles, then a literal `END`
/// frame. Cache-served jobs replay the cached trace instead (their sink
/// never ran).
fn stream_trace(conn: &mut Conn, handle: &JobHandle) -> io::Result<()> {
    let mut from = 0usize;
    loop {
        let batch = handle.trace_lines_since(from);
        if !batch.is_empty() {
            from += batch.len();
            send_text(conn, &batch.join("\n"))?;
        }
        match handle.status() {
            JobStatus::Done { from_cache } => {
                let tail = handle.trace_lines_since(from);
                if !tail.is_empty() {
                    from += tail.len();
                    send_text(conn, &tail.join("\n"))?;
                }
                if from_cache && from == 0 {
                    if let Some(Ok(out)) = handle.try_output() {
                        if !out.trace.is_empty() {
                            send_text(conn, &out.trace.join("\n"))?;
                        }
                    }
                }
                break;
            }
            JobStatus::Failed(_) => break,
            JobStatus::Queued | JobStatus::Running => std::thread::sleep(TRACE_POLL),
        }
    }
    send_text(conn, "END")
}

fn stats_reply(state: &ServerState) -> String {
    let PoolStats {
        submitted,
        completed,
        failed,
        engine_runs,
        cache:
            CacheStats {
                hits,
                misses,
                insertions,
                evictions,
                entries,
                bytes,
            },
    } = state.pool.stats();
    let graphs = state.graphs.lock().unwrap_or_else(|p| p.into_inner()).len();
    format!(
        "OK stats submitted={submitted} completed={completed} failed={failed} \
         engine_runs={engine_runs} hits={hits} misses={misses} insertions={insertions} \
         evictions={evictions} entries={entries} bytes={bytes} graphs={graphs}"
    )
}

/// One client connection: a request/reply loop until the peer hangs up
/// or sends `SHUTDOWN`.
fn handle_client(state: &ServerState, mut conn: Conn) {
    let mut words = Vec::new();
    loop {
        let text = match recv_text(&mut conn, &mut words) {
            Ok(t) => t,
            Err(_) => return, // peer gone (or corrupt): drop the connection
        };
        let mut parts = parts_of(&text);
        let reply = match parts.next() {
            Some("PING") => "OK pong".to_string(),
            Some("GRAPH") => match parts.next().ok_or("GRAPH needs FAMILY:N:SEED".to_string()) {
                Ok(spec) => match parse_graph_spec(spec) {
                    Ok(g) => register_graph(state, g),
                    Err(e) => format!("ERR {e}"),
                },
                Err(e) => format!("ERR {e}"),
            },
            Some("UPLOAD") => match (parts.next(), parts.next()) {
                (Some(n), Some(m)) => match handle_upload(state, &mut conn, &mut words, n, m) {
                    Ok(reply) => reply,
                    Err(_) => return,
                },
                _ => "ERR UPLOAD needs node and edge counts".to_string(),
            },
            Some("SUBMIT") => match parts.next().ok_or("SUBMIT needs a graph fingerprint") {
                Ok(fp) => match lookup_graph(state, fp)
                    .and_then(|g| spec_from_tokens(parts).map(|spec| (g, spec)))
                {
                    Ok((g, spec)) => {
                        let handle = state.pool.submit(g, spec);
                        track_job(state, &handle);
                        format!("OK job {}", handle.id())
                    }
                    Err(e) => format!("ERR {e}"),
                },
                Err(e) => format!("ERR {e}"),
            },
            Some("SWEEP") => match parts.next().ok_or("SWEEP needs a graph fingerprint") {
                Ok(fp) => match lookup_graph(state, fp)
                    .and_then(|g| parse_sweep(parts).map(|sweep| (g, sweep)))
                {
                    Ok((g, sweep)) => {
                        let handles = state.pool.submit_sweep(&g, &sweep);
                        for h in &handles {
                            track_job(state, h);
                        }
                        let ids: Vec<String> = handles.iter().map(|h| h.id().to_string()).collect();
                        format!("OK jobs {}", ids.join(","))
                    }
                    Err(e) => format!("ERR {e}"),
                },
                Err(e) => format!("ERR {e}"),
            },
            Some("WAIT") => match parts.next().ok_or("WAIT needs a job id") {
                Ok(id) => match lookup_job(state, id) {
                    Ok(handle) => match handle.wait() {
                        Ok(out) => {
                            let from_cache =
                                matches!(handle.status(), JobStatus::Done { from_cache: true });
                            let reply = format!(
                                "OK done from_cache={} {}",
                                u8::from(from_cache),
                                report_to_tokens(&out.report)
                            );
                            if send_text(&mut conn, &reply).is_err()
                                || send_words(&mut conn, &out.outputs).is_err()
                            {
                                return;
                            }
                            continue; // reply already sent (two frames)
                        }
                        Err(e) => format!("ERR job failed: {e}"),
                    },
                    Err(e) => format!("ERR {e}"),
                },
                Err(e) => format!("ERR {e}"),
            },
            Some("TRACE") => match parts.next().ok_or("TRACE needs a job id") {
                Ok(id) => match lookup_job(state, id) {
                    Ok(handle) => {
                        if stream_trace(&mut conn, &handle).is_err() {
                            return;
                        }
                        continue; // END frame already sent
                    }
                    Err(e) => format!("ERR {e}"),
                },
                Err(e) => format!("ERR {e}"),
            },
            Some("STATS") => stats_reply(state),
            Some("SHUTDOWN") => {
                state.shutdown.store(true, Ordering::SeqCst);
                let _ = send_text(&mut conn, "OK bye");
                return;
            }
            Some(other) => format!("ERR unknown command {other:?}"),
            None => "ERR empty command".to_string(),
        };
        if send_text(&mut conn, &reply).is_err() {
            return;
        }
    }
}

fn parts_of(text: &str) -> impl Iterator<Item = &str> {
    text.split_whitespace()
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A graph's server-side identity, as reported by `GRAPH`/`UPLOAD`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphInfo {
    /// The canonical [`Graph::fingerprint`].
    pub fingerprint: u64,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
}

/// One finished job, as reported by `WAIT`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitReply {
    /// Whether the result was served from the cache without running the
    /// engine.
    pub from_cache: bool,
    /// The run's [`RunReport`].
    pub report: RunReport,
    /// The harvested per-node outputs.
    pub outputs: Vec<u64>,
}

/// Scheduler and cache counters, as reported by `STATS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// The pool's counters (submissions, engine runs, cache hit rate).
    pub pool: PoolStats,
    /// Graphs currently installed.
    pub graphs: usize,
}

/// A blocking client for the [`Server`] protocol.
pub struct Client {
    conn: Conn,
    words: Vec<u64>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Any socket-level connect failure.
    pub fn connect(ep: &Endpoint) -> io::Result<Client> {
        Ok(Client {
            conn: ep.connect()?,
            words: Vec::new(),
        })
    }

    fn round_trip(&mut self, request: &str) -> io::Result<String> {
        send_text(&mut self.conn, request)?;
        let reply = recv_text(&mut self.conn, &mut self.words)?;
        match reply.strip_prefix("ERR ") {
            Some(e) => Err(io::Error::other(e.to_string())),
            None => Ok(reply),
        }
    }

    fn parse_graph_reply(reply: &str) -> io::Result<GraphInfo> {
        let bad = || io::Error::new(io::ErrorKind::InvalidData, format!("bad reply {reply:?}"));
        let mut parts = reply.split_whitespace();
        if (parts.next(), parts.next()) != (Some("OK"), Some("graph")) {
            return Err(bad());
        }
        let fingerprint =
            u64::from_str_radix(parts.next().ok_or_else(bad)?, 16).map_err(|_| bad())?;
        let mut field = |tag: &str| -> io::Result<usize> {
            if parts.next() != Some(tag) {
                return Err(bad());
            }
            parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())
        };
        Ok(GraphInfo {
            fingerprint,
            nodes: field("nodes")?,
            edges: field("edges")?,
        })
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// On transport failure or an unexpected reply.
    pub fn ping(&mut self) -> io::Result<()> {
        let reply = self.round_trip("PING")?;
        if reply == "OK pong" {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad reply {reply:?}"),
            ))
        }
    }

    /// Installs a generated graph from a `FAMILY:N:SEED` spec.
    ///
    /// # Errors
    ///
    /// A server-side `ERR` (bad spec) surfaces as [`io::Error`].
    pub fn graph_spec(&mut self, spec: &str) -> io::Result<GraphInfo> {
        let reply = self.round_trip(&format!("GRAPH {spec}"))?;
        Self::parse_graph_reply(&reply)
    }

    /// Uploads `g` edge-by-edge. The server rebuilds it with the same
    /// CSR construction, so the returned fingerprint equals
    /// `g.fingerprint()` — asserting that is a transport self-check.
    ///
    /// # Errors
    ///
    /// A server-side `ERR` (malformed edge list) or transport failure.
    pub fn upload(&mut self, g: &Graph) -> io::Result<GraphInfo> {
        send_text(
            &mut self.conn,
            &format!("UPLOAD {} {}", g.node_count(), g.edge_count()),
        )?;
        let mut words = Vec::with_capacity(g.node_count() + 3 * g.edge_count());
        words.extend(g.nodes().map(|v| g.id_of(v)));
        for e in g.edges() {
            words.extend([e.u.0 as u64, e.v.0 as u64, e.weight]);
        }
        send_words(&mut self.conn, &words)?;
        let reply = recv_text(&mut self.conn, &mut self.words)?;
        match reply.strip_prefix("ERR ") {
            Some(e) => Err(io::Error::other(e.to_string())),
            None => Self::parse_graph_reply(&reply),
        }
    }

    /// Submits one job against an installed graph, returning its id.
    ///
    /// # Errors
    ///
    /// Unknown graphs, non-encodable specs, and transport failures.
    pub fn submit(&mut self, graph: u64, spec: &RunSpec) -> io::Result<u64> {
        let tokens = spec_to_tokens(spec).map_err(io::Error::other)?;
        let reply = self.round_trip(&format!("SUBMIT {graph:016x} {tokens}"))?;
        reply
            .strip_prefix("OK job ")
            .and_then(|id| id.parse().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad reply {reply:?}"))
            })
    }

    /// Submits a sweep (cross-product batch), returning the job ids in
    /// the sweep's canonical order (algorithm-major, then `k`, then
    /// seed) — the same order [`SweepSpec::specs`] enumerates.
    ///
    /// # Errors
    ///
    /// Unknown graphs, non-encodable specs, and transport failures.
    pub fn sweep(&mut self, graph: u64, sweep: &SweepSpec) -> io::Result<Vec<u64>> {
        let base = spec_to_tokens(&sweep.base).map_err(io::Error::other)?;
        let join = |xs: &[String]| xs.join(",");
        let mut request = format!("SWEEP {graph:016x} {base}");
        if !sweep.algos.is_empty() {
            let algos: Vec<String> = sweep.algos.iter().map(|a| a.label().into()).collect();
            request.push_str(&format!(" algos={}", join(&algos)));
        }
        if !sweep.ks.is_empty() {
            let ks: Vec<String> = sweep.ks.iter().map(|k| k.to_string()).collect();
            request.push_str(&format!(" ks={}", join(&ks)));
        }
        if !sweep.seeds.is_empty() {
            let seeds: Vec<String> = sweep.seeds.iter().map(|s| s.to_string()).collect();
            request.push_str(&format!(" seeds={}", join(&seeds)));
        }
        let reply = self.round_trip(&request)?;
        let ids = reply.strip_prefix("OK jobs ").ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad reply {reply:?}"))
        })?;
        ids.split(',')
            .map(|id| {
                id.parse().map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad job id {id:?}: {e}"),
                    )
                })
            })
            .collect()
    }

    /// Blocks until job `id` finishes and returns its report and
    /// outputs.
    ///
    /// # Errors
    ///
    /// A failed job surfaces its failure description as [`io::Error`].
    pub fn wait(&mut self, id: u64) -> io::Result<WaitReply> {
        let reply = self.round_trip(&format!("WAIT {id}"))?;
        let rest = reply.strip_prefix("OK done ").ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad reply {reply:?}"))
        })?;
        let mut parts = rest.split_whitespace();
        let from_cache = match parts.next() {
            Some("from_cache=0") => false,
            Some("from_cache=1") => true,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad reply {reply:?}"),
                ))
            }
        };
        let report =
            report_from_tokens(parts).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        read_frame(&mut self.conn, &mut self.words)?;
        Ok(WaitReply {
            from_cache,
            report,
            outputs: self.words.clone(),
        })
    }

    /// Streams job `id`'s JSONL trace, feeding every line to `sink` as
    /// it arrives, until the server's `END` marker. Returns the number
    /// of lines streamed.
    ///
    /// # Errors
    ///
    /// Transport failures and server-side `ERR` replies.
    pub fn trace(&mut self, id: u64, mut sink: impl FnMut(&str)) -> io::Result<usize> {
        send_text(&mut self.conn, &format!("TRACE {id}"))?;
        let mut lines = 0usize;
        loop {
            let batch = recv_text(&mut self.conn, &mut self.words)?;
            if batch == "END" {
                return Ok(lines);
            }
            if let Some(e) = batch.strip_prefix("ERR ") {
                return Err(io::Error::other(e.to_string()));
            }
            for line in batch.lines() {
                sink(line);
                lines += 1;
            }
        }
    }

    /// Reads the scheduler and cache counters.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed replies.
    pub fn stats(&mut self) -> io::Result<ServeStats> {
        let reply = self.round_trip("STATS")?;
        let rest = reply.strip_prefix("OK stats ").ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad reply {reply:?}"))
        })?;
        let mut s = ServeStats::default();
        for tok in rest.split_whitespace() {
            let bad = || {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad stats token {tok:?}"),
                )
            };
            let (key, v) = tok.split_once('=').ok_or_else(bad)?;
            let v: u64 = v.parse().map_err(|_| bad())?;
            match key {
                "submitted" => s.pool.submitted = v,
                "completed" => s.pool.completed = v,
                "failed" => s.pool.failed = v,
                "engine_runs" => s.pool.engine_runs = v,
                "hits" => s.pool.cache.hits = v,
                "misses" => s.pool.cache.misses = v,
                "insertions" => s.pool.cache.insertions = v,
                "evictions" => s.pool.cache.evictions = v,
                "entries" => s.pool.cache.entries = v as usize,
                "bytes" => s.pool.cache.bytes = v as usize,
                "graphs" => s.graphs = v as usize,
                _ => return Err(bad()),
            }
        }
        Ok(s)
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures and unexpected replies.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let reply = self.round_trip("SHUTDOWN")?;
        if reply == "OK bye" {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad reply {reply:?}"),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_congest::jobs::JobOutput;
    use kdom_congest::{trace, Runner};
    use kdom_graph::generators::{path, GenConfig};

    /// A deterministic toy runner: one trace line, outputs derived from
    /// the spec and graph so distinct specs yield distinct results.
    fn toy_runner() -> Runner {
        Arc::new(|g, spec| {
            trace::emit_phase("Toy");
            let base = spec.seed ^ (spec.k << 8);
            Ok(JobOutput {
                report: RunReport {
                    rounds: spec.seed + 1,
                    messages: g.node_count() as u64,
                    ..RunReport::default()
                },
                outputs: g.nodes().map(|v| base ^ g.id_of(v)).collect(),
                trace: Vec::new(),
            })
        })
    }

    fn test_server() -> (Endpoint, std::thread::JoinHandle<io::Result<()>>) {
        let pool = JobPool::new(2, 1 << 20, toy_runner());
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".into()), pool).expect("bind");
        let ep = server.local_endpoint().expect("endpoint");
        let handle = std::thread::spawn(move || server.run());
        (ep, handle)
    }

    #[test]
    fn spec_tokens_round_trip_bytes() {
        let spec = RunSpec::default()
            .with_algo(Algo::FastDomG)
            .with_k(7)
            .with_seed(42)
            .with_threads(3)
            .with_scheduling(Scheduling::FullScan)
            .with_wire_exact(true)
            .with_exec(ExecSpec::ReliableAlpha { max_delay: 9 })
            .with_faults(FaultPlan::new(5).drop_prob(0.125))
            .with_trace(true);
        let tokens = spec_to_tokens(&spec).expect("encodable");
        let back = spec_from_tokens(tokens.split_whitespace()).expect("parse");
        assert_eq!(back, spec);
        assert_eq!(back.canonical_hash(), spec.canonical_hash());
    }

    #[test]
    fn structured_fault_plans_are_refused() {
        let mut plan = FaultPlan::new(1);
        plan.crashes.push(kdom_congest::faults::Crash {
            node: NodeId(0),
            at: 3,
        });
        let spec = RunSpec::default().with_faults(plan);
        let err = spec_to_tokens(&spec).expect_err("crashes cannot cross the wire");
        assert!(err.contains("not wire-encodable"), "{err}");
    }

    #[test]
    fn unknown_spec_tokens_are_rejected() {
        let err = spec_from_tokens(["algo=bfs", "kay=3"].into_iter())
            .expect_err("typos must not silently default");
        assert!(err.contains("kay"), "{err}");
    }

    #[test]
    fn report_tokens_round_trip() {
        let report = RunReport {
            rounds: 1,
            messages: 2,
            total_bits: 3,
            max_message_bits: 4,
            peak_messages_per_round: 5,
            dropped_messages: 6,
            duplicated_messages: 7,
            retransmissions: 8,
            peak_memory_bytes: 9,
        };
        let back = report_from_tokens(report_to_tokens(&report).split_whitespace()).expect("parse");
        assert_eq!(back, report);
    }

    #[test]
    fn text_frames_round_trip_via_a_pipe() {
        let mut buf = Vec::new();
        send_text(&mut buf, "hello frames ≠ bytes").expect("write");
        let mut words = Vec::new();
        let text = recv_text(&mut &buf[..], &mut words).expect("read");
        assert_eq!(text, "hello frames ≠ bytes");
    }

    #[test]
    fn server_round_trip_submit_wait_trace_stats() {
        let (ep, server) = test_server();
        let mut client = Client::connect(&ep).expect("connect");
        client.ping().expect("ping");

        let info = client.graph_spec("path:8:3").expect("install graph");
        let reference = path(&GenConfig::with_seed(8, 3));
        assert_eq!(info.fingerprint, reference.fingerprint());
        assert_eq!((info.nodes, info.edges), (8, 7));

        let spec = RunSpec::default().with_seed(5).with_trace(true);
        let id = client.submit(info.fingerprint, &spec).expect("submit");
        let reply = client.wait(id).expect("wait");
        assert!(!reply.from_cache, "first run misses the cache");
        assert_eq!(reply.report.rounds, 6);
        assert_eq!(reply.outputs.len(), 8);

        // resubmitting the same spec is served from the cache, byte-identically
        let id2 = client.submit(info.fingerprint, &spec).expect("resubmit");
        let reply2 = client.wait(id2).expect("wait cached");
        assert!(reply2.from_cache, "identical spec must hit the cache");
        assert_eq!(reply2.report, reply.report);
        assert_eq!(reply2.outputs, reply.outputs);

        let mut lines = Vec::new();
        client
            .trace(id, |l| lines.push(l.to_string()))
            .expect("trace");
        assert_eq!(lines.len(), 1, "the toy runner emits one phase marker");
        assert!(lines[0].contains("Toy"), "{lines:?}");
        // the cached job replays the cached trace
        let mut cached_lines = Vec::new();
        client
            .trace(id2, |l| cached_lines.push(l.to_string()))
            .expect("cached trace");
        assert_eq!(cached_lines, lines);

        let stats = client.stats().expect("stats");
        assert_eq!(stats.pool.submitted, 2);
        assert_eq!(stats.pool.engine_runs, 1, "the resubmission ran nothing");
        assert_eq!(stats.pool.cache.hits, 1);
        assert_eq!(stats.graphs, 1);

        client.shutdown().expect("shutdown");
        server.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn uploaded_graphs_fingerprint_identically() {
        let (ep, server) = test_server();
        let mut client = Client::connect(&ep).expect("connect");
        let g = Family::Gnp.generate(30, 11);
        let info = client.upload(&g).expect("upload");
        assert_eq!(info.fingerprint, g.fingerprint());
        assert_eq!((info.nodes, info.edges), (g.node_count(), g.edge_count()));
        // the uploaded graph is immediately runnable
        let id = client
            .submit(info.fingerprint, &RunSpec::default())
            .expect("submit");
        let reply = client.wait(id).expect("wait");
        assert_eq!(reply.outputs.len(), g.node_count());
        client.shutdown().expect("shutdown");
        server.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn sweeps_enumerate_in_canonical_order_and_errors_stay_contained() {
        let (ep, server) = test_server();
        let mut client = Client::connect(&ep).expect("connect");
        let info = client.graph_spec("path:6:0").expect("graph");
        let sweep = SweepSpec::new(RunSpec::default())
            .over_algos(&[Algo::SimpleMst, Algo::Bfs])
            .over_seeds(&[1, 2, 3]);
        let ids = client.sweep(info.fingerprint, &sweep).expect("sweep");
        assert_eq!(ids.len(), 6, "2 algorithms × 3 seeds");
        for (id, spec) in ids.iter().zip(sweep.specs()) {
            let reply = client.wait(*id).expect("wait");
            assert_eq!(reply.report.rounds, spec.seed + 1, "canonical order held");
        }
        // an unknown graph is an ERR reply, not a dropped connection
        let err = client
            .submit(0xdead_beef, &RunSpec::default())
            .expect_err("unknown graph");
        assert!(err.to_string().contains("unknown graph"), "{err}");
        client.ping().expect("connection survives an ERR");
        client.shutdown().expect("shutdown");
        server.join().expect("server thread").expect("clean exit");
    }
}
