//! # kdom — Fast Distributed Construction of k-Dominating Sets
//!
//! A Rust reproduction of **Kutten & Peleg, "Fast Distributed Construction
//! of k-Dominating Sets and Applications", PODC 1995**: the `O(k log* n)`
//! distributed k-dominating-set algorithms and the
//! `O(√n log* n + Diam(G))` distributed minimum spanning tree built on top
//! of them, all running on a deterministic synchronous CONGEST simulator.
//!
//! The workspace is split into four library crates, re-exported here:
//!
//! * [`graph`] — graph substrate (representation, generators, properties,
//!   sequential MST references);
//! * [`congest`] — the synchronous CONGEST-model simulator;
//! * [`core`] — the paper's k-dominating-set algorithms (`DiamDOM`,
//!   `BalancedDOM`, the `DOMPartition` family, `FastDOM_T`, `FastDOM_G`);
//! * [`mst`] — the MST application (`SimpleMST`, the pipelined edge
//!   elimination, `FastMST`) and its baselines.
//!
//! ## Quickstart
//!
//! ```
//! use kdom::graph::generators::{gnp_connected, GenConfig};
//! use kdom::core::fastdom::fast_dom_g;
//! use kdom::core::verify::check_k_dominating;
//!
//! let g = gnp_connected(&GenConfig::with_seed(200, 1), 0.05);
//! let k = 4;
//! let out = fast_dom_g(&g, k);
//! check_k_dominating(&g, out.dominators(), k).unwrap();
//! assert!(out.dominators().len() <= (200 / (k + 1)).max(1));
//! ```

pub use kdom_congest as congest;
pub use kdom_core as core;
pub use kdom_graph as graph;
pub use kdom_mst as mst;

pub mod serve;
