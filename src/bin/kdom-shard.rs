//! Multi-process shard runner for the CONGEST engine's socket transport.
//!
//! One binary, three roles:
//!
//! - `kdom-shard coord` — bind a socket, accept `--shards` workers, and
//!   drive the round clock (the coordinator never runs protocol code).
//! - `kdom-shard worker` — connect to a coordinator and execute one
//!   contiguous shard of the automata.
//! - `kdom-shard run` — demo convenience: bind an ephemeral port, spawn
//!   `--shards` worker copies of this same binary, and coordinate them.
//!
//! Every process must be given the *same* `--graph` and `--proto` spec;
//! the handshake's graph fingerprint rejects drift. Example:
//!
//! ```text
//! kdom-shard run --shards 4 --graph grid:2500:42 --proto simple-mst
//! ```
//!
//! Exit codes: `0` success, `2` a peer was lost (socket dropped, silent
//! past the heartbeat deadline, or handshake mismatch), `3` the
//! `--die-at-round` test hook fired, `1` any other failure.

use std::process::{Command, ExitCode, Stdio};
use std::time::Duration;

use kdom::congest::transport::{
    coordinate, net_timeout, run_worker, CoordListener, CoordOpts, Endpoint, WorkerOpts,
};
use kdom::congest::{EngineConfig, JsonlSink, SimError, TraceSink};
use kdom::core::dist::fragments::{schedule_end, FragmentNode};
use kdom::graph::generators::Family;
use kdom::graph::Graph;
use kdom::mst::fastmst::default_k;

/// A `--graph FAMILY:N:SEED` spec.
struct GraphSpec {
    family: Family,
    n: usize,
    seed: u64,
}

impl GraphSpec {
    fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [family, n, seed] = parts.as_slice() else {
            return Err(format!("graph spec {s:?} is not FAMILY:N:SEED"));
        };
        let family = match *family {
            "grid" => Family::Grid,
            "path" => Family::Path,
            "star" => Family::Star,
            "btree" => Family::BalancedBinary,
            "rtree" => Family::RandomTree,
            "caterpillar" => Family::Caterpillar,
            "gnp" => Family::Gnp,
            other => return Err(format!("unknown graph family {other:?}")),
        };
        let n = n.parse().map_err(|e| format!("bad node count: {e}"))?;
        let seed = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
        Ok(GraphSpec { family, n, seed })
    }

    fn build(&self) -> Graph {
        self.family.generate(self.n, self.seed)
    }
}

/// A `--proto` spec. Only `simple-mst[:K]` exists today; the enum keeps
/// the dispatch explicit for when more stages ride the transport.
enum ProtoSpec {
    SimpleMst { k: Option<usize> },
}

impl ProtoSpec {
    fn parse(s: &str) -> Result<Self, String> {
        match s.split_once(':') {
            None if s == "simple-mst" => Ok(ProtoSpec::SimpleMst { k: None }),
            Some(("simple-mst", k)) => {
                let k = k.parse().map_err(|e| format!("bad k: {e}"))?;
                Ok(ProtoSpec::SimpleMst { k: Some(k) })
            }
            _ => Err(format!("unknown protocol {s:?} (try simple-mst[:K])")),
        }
    }

    fn k_for(&self, g: &Graph) -> usize {
        match self {
            ProtoSpec::SimpleMst { k } => k.unwrap_or_else(|| default_k(g.node_count())),
        }
    }
}

struct Args {
    role: String,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut it = std::env::args().skip(1);
        let role = it.next().ok_or("missing role: coord | worker | run")?;
        let mut flags = Vec::new();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), value));
        }
        Ok(Args { role, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("--{name} {v:?} did not parse: {e}")),
        }
    }
}

fn harvest(node: &FragmentNode) -> u64 {
    // parent port + 1, with 0 for fragment roots: one u64 per node, enough
    // to reconstruct the fragment forest coordinator-side
    node.parent.map_or(0, |p| p.0 as u64 + 1)
}

fn sim_exit(e: &SimError) -> ExitCode {
    eprintln!("kdom-shard: {e}");
    match e {
        SimError::PeerLost { .. } => ExitCode::from(2),
        _ => ExitCode::from(1),
    }
}

fn worker(args: &Args) -> Result<ExitCode, String> {
    let graph = GraphSpec::parse(args.require("graph")?)?.build();
    let proto = ProtoSpec::parse(args.require("proto")?)?;
    let k = proto.k_for(&graph);
    let connect: Endpoint = args.require("connect")?.parse()?;
    let shard: usize = args
        .require("shard")?
        .parse()
        .map_err(|e| format!("bad --shard: {e}"))?;
    let shards: usize = args
        .require("shards")?
        .parse()
        .map_err(|e| format!("bad --shards: {e}"))?;
    let die_at_round = match args.get("die-at-round") {
        None => None,
        Some(v) => Some(v.parse().map_err(|e| format!("bad --die-at-round: {e}"))?),
    };
    let opts = WorkerOpts {
        connect,
        shard,
        shards,
        die_at_round,
    };
    match run_worker(&graph, |_, id| FragmentNode::new(k, id), harvest, &opts) {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(e) => Ok(sim_exit(&e)),
    }
}

fn coord_opts(args: &Args, graph: &Graph, k: usize) -> Result<CoordOpts, String> {
    let shards: usize = args
        .require("shards")?
        .parse()
        .map_err(|e| format!("bad --shards: {e}"))?;
    if shards == 0 || shards > graph.node_count() {
        return Err(format!(
            "--shards {shards} out of range for {} nodes",
            graph.node_count()
        ));
    }
    let max_rounds = args.parsed("max-rounds", schedule_end(k) + 8)?;
    let timeout_ms: u64 = args.parsed("timeout-ms", net_timeout().as_millis() as u64)?;
    Ok(CoordOpts {
        shards,
        // the engine subset of the RunSpec knob dialect; the full
        // RunSpec::from_env would reject a stray KDOM_TRANSPORT socket
        // endpoint by pointing at this very binary, and the transport
        // here is chosen by --listen/--connect flags, not the knob
        config: EngineConfig::from_env(),
        plan: None,
        max_rounds,
        timeout: Duration::from_millis(timeout_ms),
    })
}

fn trace_sink(args: &Args) -> Result<Option<Box<dyn TraceSink>>, String> {
    match args.get("trace") {
        None => Ok(None),
        Some(path) => {
            let sink =
                JsonlSink::append(path).map_err(|e| format!("cannot open trace {path:?}: {e}"))?;
            Ok(Some(Box::new(sink)))
        }
    }
}

fn report_outcome(
    result: Result<kdom::congest::transport::DistOutcome, SimError>,
) -> Result<ExitCode, String> {
    match result {
        Ok(outcome) => {
            let roots = outcome.outputs.iter().filter(|&&p| p == 0).count();
            println!("{:#?}", outcome.report);
            println!(
                "outputs: {} nodes, {} fragment roots",
                outcome.outputs.len(),
                roots
            );
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => Ok(sim_exit(&e)),
    }
}

fn coord(args: &Args) -> Result<ExitCode, String> {
    let graph = GraphSpec::parse(args.require("graph")?)?.build();
    let proto = ProtoSpec::parse(args.require("proto")?)?;
    let k = proto.k_for(&graph);
    let opts = coord_opts(args, &graph, k)?;
    let listen: Endpoint = args.require("listen")?.parse()?;
    let listener = CoordListener::bind(&listen).map_err(|e| format!("bind {listen}: {e}"))?;
    if let Ok(ep) = listener.local_endpoint() {
        println!("listening on {ep}");
    }
    report_outcome(coordinate(listener, &graph, &opts, trace_sink(args)?))
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let graph_spec = args.require("graph")?;
    let proto_spec = args.require("proto")?;
    let graph = GraphSpec::parse(graph_spec)?.build();
    let proto = ProtoSpec::parse(proto_spec)?;
    let k = proto.k_for(&graph);
    let opts = coord_opts(args, &graph, k)?;
    let listener = CoordListener::bind(&Endpoint::Tcp("127.0.0.1:0".into()))
        .map_err(|e| format!("bind: {e}"))?;
    let ep = listener
        .local_endpoint()
        .map_err(|e| format!("local endpoint: {e}"))?;
    println!("coordinating {} workers on {ep}", opts.shards);
    let exe = std::env::current_exe().map_err(|e| format!("current exe: {e}"))?;
    let mut children = Vec::new();
    for shard in 0..opts.shards {
        let child = Command::new(&exe)
            .args([
                "worker",
                "--connect",
                &ep.to_string(),
                "--shard",
                &shard.to_string(),
                "--shards",
                &opts.shards.to_string(),
                "--graph",
                graph_spec,
                "--proto",
                proto_spec,
            ])
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn worker {shard}: {e}"))?;
        children.push(child);
    }
    let code = report_outcome(coordinate(listener, &graph, &opts, trace_sink(args)?))?;
    for mut child in children {
        let _ = child.wait();
    }
    Ok(code)
}

fn main() -> ExitCode {
    let result = Args::parse().and_then(|args| match args.role.as_str() {
        "worker" => worker(&args),
        "coord" => coord(&args),
        "run" => run(&args),
        other => Err(format!("unknown role {other:?}: coord | worker | run")),
    });
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("kdom-shard: {msg}");
            eprintln!(
                "usage: kdom-shard run --shards N --graph grid:2500:42 --proto simple-mst[:K] \
                 [--max-rounds M] [--timeout-ms T] [--trace out.jsonl]"
            );
            ExitCode::from(1)
        }
    }
}
