//! kdom-as-a-service: the job server and its command-line client.
//!
//! One binary, four roles:
//!
//! - `kdom-serve serve` — bind a socket, accept clients, and run jobs on
//!   a bounded worker pool fronted by the content-addressed result
//!   cache. Prints `listening on <endpoint>` once ready (an ephemeral
//!   `--listen tcp:127.0.0.1:0` resolves to its real port).
//! - `kdom-serve sweep` — install a graph on a running server, submit a
//!   cross-product sweep, wait for every job, and print one line per
//!   result plus the server's cache statistics.
//! - `kdom-serve stats` — print a running server's scheduler and cache
//!   counters.
//! - `kdom-serve shutdown` — ask a running server to drain and exit.
//!
//! Example:
//!
//! ```text
//! kdom-serve serve --listen tcp:127.0.0.1:7400 --jobs 4 &
//! kdom-serve sweep --connect tcp:127.0.0.1:7400 --graph grid:400:42 \
//!     --algos simple-mst,bfs --seeds 1,2,3
//! ```
//!
//! Exit codes: `0` success, `1` any failure (the offending command and
//! reason go to stderr).

use std::io::Write as _;
use std::process::ExitCode;

use kdom::congest::transport::Endpoint;
use kdom::congest::{Algo, ExecSpec, JobPool, RunSpec, SweepSpec};
use kdom::serve::{Client, Server};

struct Args {
    role: String,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut it = std::env::args().skip(1);
        let role = it
            .next()
            .ok_or("missing role: serve | sweep | stats | shutdown")?;
        let mut flags = Vec::new();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), value));
        }
        Ok(Args { role, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("--{name} {v:?} did not parse: {e}")),
        }
    }

    /// A comma-separated list flag (`--seeds 1,2,3`), empty when unset.
    fn list<T: std::str::FromStr>(&self, name: &str) -> Result<Vec<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(Vec::new()),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.parse()
                        .map_err(|e| format!("--{name} item {x:?} did not parse: {e}"))
                })
                .collect(),
        }
    }
}

fn connect(args: &Args) -> Result<Client, String> {
    let ep: Endpoint = args.require("connect")?.parse()?;
    Client::connect(&ep).map_err(|e| format!("connect {ep}: {e}"))
}

fn serve(args: &Args) -> Result<(), String> {
    let listen: Endpoint = args
        .parsed("listen", Endpoint::Tcp("127.0.0.1:0".into()))
        .map_err(|e| e.to_string())?;
    let runner = kdom::mst::service::runner();
    // flags override the KDOM_JOBS / KDOM_CACHE_BYTES knobs when given
    let pool = match (args.get("jobs"), args.get("cache-bytes")) {
        (None, None) => JobPool::from_env(runner),
        _ => JobPool::new(
            args.parsed("jobs", 4usize)?,
            args.parsed("cache-bytes", 64usize << 20)?,
            runner,
        ),
    };
    let server = Server::bind(&listen, pool).map_err(|e| format!("bind {listen}: {e}"))?;
    let ep = server
        .local_endpoint()
        .map_err(|e| format!("local endpoint: {e}"))?;
    println!("listening on {ep}");
    // scripted callers (CI, the smoke test) block on this line to know
    // the port — it must not sit in a stdio buffer
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.run().map_err(|e| format!("serve: {e}"))
}

/// Builds the sweep's base [`RunSpec`] from the single-value flags.
fn base_spec(args: &Args) -> Result<RunSpec, String> {
    let mut spec = RunSpec::default()
        .with_k(args.parsed("k", 0u64)?)
        .with_seed(args.parsed("seed", 0u64)?)
        .with_trace(args.get("trace-dir").is_some());
    if let Some(algo) = args.get("algo") {
        spec = spec.with_algo(algo.parse()?);
    }
    match args.get("exec") {
        None | Some("sync") => {}
        Some("alpha") | Some("reliable-alpha") | Some("reliable") => {
            spec = spec.with_exec(ExecSpec::ReliableAlpha {
                max_delay: args.parsed("max-delay", 4u64)?,
            });
        }
        Some(other) => return Err(format!("--exec {other:?} is not sync or alpha")),
    }
    Ok(spec)
}

fn sweep(args: &Args) -> Result<(), String> {
    let mut client = connect(args)?;
    let info = client
        .graph_spec(args.require("graph")?)
        .map_err(|e| format!("install graph: {e}"))?;
    println!(
        "graph {:016x}: {} nodes, {} edges",
        info.fingerprint, info.nodes, info.edges
    );
    let algos: Vec<Algo> = args.list("algos")?;
    let sweep = SweepSpec::new(base_spec(args)?)
        .over_algos(&algos)
        .over_ks(&args.list("ks")?)
        .over_seeds(&args.list("seeds")?);
    let trace_dir = args.get("trace-dir").map(std::path::PathBuf::from);
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let ids = client
        .sweep(info.fingerprint, &sweep)
        .map_err(|e| format!("submit sweep: {e}"))?;
    for (id, spec) in ids.iter().zip(sweep.specs()) {
        let reply = client
            .wait(*id)
            .map_err(|e| format!("job {id} ({spec:?}): {e}"))?;
        println!(
            "job {id} algo={} k={} seed={} cached={} rounds={} messages={}",
            spec.algo,
            spec.k,
            spec.seed,
            u8::from(reply.from_cache),
            reply.report.rounds,
            reply.report.messages
        );
        if let Some(dir) = &trace_dir {
            let path = dir.join(format!("job-{id}.jsonl"));
            let mut file = std::fs::File::create(&path)
                .map_err(|e| format!("create {}: {e}", path.display()))?;
            client
                .trace(*id, |line| {
                    let _ = writeln!(file, "{line}");
                })
                .map_err(|e| format!("trace job {id}: {e}"))?;
        }
    }
    print_stats(&mut client)
}

fn print_stats(client: &mut Client) -> Result<(), String> {
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    println!(
        "server: {} submitted, {} engine runs, cache {} hits / {} misses, \
         {} entries ({} bytes), {} graphs",
        stats.pool.submitted,
        stats.pool.engine_runs,
        stats.pool.cache.hits,
        stats.pool.cache.misses,
        stats.pool.cache.entries,
        stats.pool.cache.bytes,
        stats.graphs
    );
    Ok(())
}

fn main() -> ExitCode {
    let result = Args::parse().and_then(|args| match args.role.as_str() {
        "serve" => serve(&args),
        "sweep" => sweep(&args),
        "stats" => print_stats(&mut connect(&args)?),
        "shutdown" => connect(&args)?
            .shutdown()
            .map_err(|e| format!("shutdown: {e}")),
        other => Err(format!(
            "unknown role {other:?}: serve | sweep | stats | shutdown"
        )),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("kdom-serve: {msg}");
            eprintln!(
                "usage: kdom-serve serve [--listen tcp:HOST:PORT] [--jobs N] [--cache-bytes B]\n\
                 \x20      kdom-serve sweep --connect EP --graph FAMILY:N:SEED \
                 [--algo A | --algos a,b] [--k K | --ks ...] [--seed S | --seeds ...] \
                 [--exec sync|alpha] [--max-delay D] [--trace-dir DIR]\n\
                 \x20      kdom-serve stats --connect EP\n\
                 \x20      kdom-serve shutdown --connect EP"
            );
            ExitCode::from(1)
        }
    }
}
