//! Server placement: pick replica locations so every client is within a
//! bounded number of hops of a server — the [BKP] center-selection use
//! case from the paper's introduction.
//!
//! We model a corporate WAN as a grid-with-shortcuts topology, sweep the
//! service radius `k`, and report how many servers `FastDOM_G` needs
//! versus the theoretical bound — plus the worst client latency actually
//! achieved.
//!
//! ```bash
//! cargo run --example server_placement
//! ```

use kdom::core::fastdom::fast_dom_g;
use kdom::core::verify::{check_k_dominating, dominating_size_bound};
use kdom::graph::generators::{gnp_connected, GenConfig};
use kdom::graph::properties::{diameter, nearest_source};

fn main() {
    let n = 400;
    // A sparse WAN-ish topology: connected, average degree ≈ 5.
    let g = gnp_connected(&GenConfig::with_seed(n, 7), 5.0 / n as f64);
    println!(
        "network: {} sites, {} links, diameter {}\n",
        g.node_count(),
        g.edge_count(),
        diameter(&g)
    );
    println!(
        "{:>3}  {:>8}  {:>6}  {:>12}  {:>14}",
        "k", "servers", "bound", "worst client", "charged rounds"
    );

    for k in 1..=8usize {
        let placement = fast_dom_g(&g, k);
        let servers = placement.dominators().to_vec();
        check_k_dominating(&g, &servers, k).expect("every client within k hops");

        // worst actual client latency (hops to nearest server)
        let (dist, _) = nearest_source(&g, &servers);
        let worst = dist.iter().copied().max().unwrap_or(0);

        println!(
            "{:>3}  {:>8}  {:>6}  {:>12}  {:>14}",
            k,
            servers.len(),
            dominating_size_bound(n, k),
            worst,
            placement.charge.rounds,
        );
    }

    println!("\nEvery row satisfies Theorem 4.4: servers ≤ n/(k+1), clients ≤ k hops away.");
}
