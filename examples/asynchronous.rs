//! Asynchronous execution demo: the paper's §1.2 synchrony argument.
//!
//! The same per-node `SimpleMST` automaton runs (a) on the synchronous
//! simulator and (b) on an event-driven asynchronous network with random
//! message delays under synchronizer α — and selects the exact same MST
//! fragment edges, at the cost of the classic α control-message overhead.
//!
//! ```bash
//! cargo run --release --example asynchronous
//! ```

use kdom::congest::run_protocol_alpha;
use kdom::core::dist::fragments::{run_simple_mst, FragmentNode};
use kdom::graph::generators::Family;

fn main() {
    let g = Family::Grid.generate(144, 11);
    let k = 7;
    println!(
        "graph: {} nodes, {} edges; SimpleMST with k = {k}\n",
        g.node_count(),
        g.edge_count()
    );

    // Synchronous run.
    let sync = run_simple_mst(&g, k);
    println!(
        "synchronous:  {} rounds, {} messages, {} fragments",
        sync.report.rounds,
        sync.report.messages,
        sync.roots.len()
    );
    let mut want = sync.tree_edges.clone();
    want.sort_unstable();

    // Asynchronous runs with growing delay bounds.
    for max_delay in [1u64, 4, 16] {
        let nodes: Vec<FragmentNode> = g
            .nodes()
            .map(|v| FragmentNode::new(k, g.id_of(v)))
            .collect();
        let (nodes, rep) =
            run_protocol_alpha(&g, nodes, max_delay, max_delay, 10_000_000).expect("α run");
        let mut got: Vec<_> = g
            .nodes()
            .filter_map(|v| nodes[v.0].parent.map(|p| g.neighbors(v)[p.0].edge))
            .collect();
        got.sort_unstable();
        assert_eq!(got, want, "α must select the same MST edges");
        println!(
            "α, delay ≤ {max_delay:>2}: {} pulses, virtual time {}, {} payload + {} control msgs — same MST ✓",
            rep.pulses, rep.virtual_time, rep.payload_messages, rep.control_messages
        );
    }

    println!("\nSynchronizer α makes the synchronous algorithms run verbatim on an");
    println!("asynchronous network, paying one control message per edge-direction per");
    println!("pulse — exactly the overhead the paper quotes from [Al].");
}
