//! Fault injection and recovery demo: dropping the paper's reliability
//! assumption.
//!
//! A seeded [`FaultPlan`] subjects the asynchronous network to heavy
//! message loss, duplication and extra delay; the per-link ARQ transport
//! recovers exactly-once delivery, so the unmodified `FastDOM_G` stack
//! (SimpleMST + partition + within-cluster domination) computes the exact
//! same k-dominating set it does on a perfect synchronous network. A
//! crash-stop failure degrades the topology instead, and the watchdog
//! turns a wedged run into a structured error naming the stuck nodes.
//!
//! ```bash
//! cargo run --release --example lossy_recovery
//! ```

use kdom::congest::{run_protocol, run_protocol_alpha_reliable, FaultPlan, SimError};
use kdom::core::dist::bfs::BfsNode;
use kdom::core::dist::executor::Executor;
use kdom::core::dist::fastdom::fast_dom_g_distributed_on;
use kdom::core::fastdom::WithinCluster;
use kdom::graph::generators::Family;
use kdom::graph::NodeId;

fn main() {
    let g = Family::Gnp.generate(120, 47);
    let k = 4;
    println!(
        "graph: {} nodes, {} edges; FastDOM_G with k = {k}\n",
        g.node_count(),
        g.edge_count()
    );

    // Baseline: the paper's model — reliable, synchronous.
    let sync = fast_dom_g_distributed_on(&g, k, WithinCluster::OptimalDp, &Executor::Sync);
    println!(
        "reliable sync:       {:>3} dominators (bound n/(k+1) = {})",
        sync.dominators().len(),
        g.node_count() / (k + 1)
    );

    // The same stack over a hostile asynchronous network: 30% of all
    // transmissions dropped, 10% duplicated, up to 3 units extra delay.
    for loss in [10u64, 30] {
        let plan = FaultPlan::new(1000 + loss)
            .drop_prob(loss as f64 / 100.0)
            .dup_prob(0.10)
            .max_extra_delay(3);
        let exec = Executor::ReliableAlpha {
            seed: 7,
            max_delay: 2,
            plan,
        };
        let lossy = fast_dom_g_distributed_on(&g, k, WithinCluster::OptimalDp, &exec);
        assert_eq!(
            lossy.dominators(),
            sync.dominators(),
            "recovery must reproduce the fault-free output"
        );
        println!(
            "ARQ over {loss:>2}% loss:   {:>3} dominators — identical set ✓",
            lossy.dominators().len()
        );
    }

    // Crash-stop: a node that never wakes up is a degraded topology. BFS
    // from n0 still terminates and the survivors get correct distances.
    let root = NodeId(0);
    let dead = NodeId(97);
    let plan = FaultPlan::new(9).drop_prob(0.20).crash(dead, 0);
    let nodes: Vec<BfsNode> = (0..g.node_count())
        .map(|v| BfsNode::new(v == root.0))
        .collect();
    let (nodes, rep) =
        run_protocol_alpha_reliable(&g, nodes, 11, 2, &plan, 1_000_000).expect("survivors finish");
    let reached = nodes.iter().filter(|n| n.depth.is_some()).count();
    println!(
        "\ncrash of {dead:?} at pulse 0: BFS over 20% loss reaches {reached}/{} nodes,",
        g.node_count()
    );
    println!(
        "  {} drops / {} duplicates healed by {} retransmissions",
        rep.dropped_messages, rep.duplicated_messages, rep.retransmissions
    );
    assert!(
        nodes[dead.0].depth.is_none(),
        "the dead node learns nothing"
    );

    // The watchdog: an impossible budget does not hang — it returns a
    // structured error naming the nodes that were still busy.
    let nodes: Vec<BfsNode> = (0..g.node_count())
        .map(|v| BfsNode::new(v == root.0))
        .collect();
    match run_protocol(&g, nodes, 2) {
        Err(SimError::RoundLimitExceeded { limit, stall }) => {
            println!("\nbudget of {limit} rounds exhausted; watchdog says:");
            println!("  {}", SimError::RoundLimitExceeded { limit, stall });
        }
        other => panic!("expected a stall report, got {other:?}"),
    }

    println!("\nThe reliability assumption is a toggle: flip the executor and every");
    println!("protocol in the repo runs unmodified over a lossy asynchronous network.");
}
