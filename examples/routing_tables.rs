//! Sparse routing tables: the [PU] application that motivated
//! k-dominating clusters — partition the network into radius-k clusters
//! so that only cluster centers keep full routing state, and every node
//! reaches its center in ≤ k hops.
//!
//! The example builds the radius-k cluster cover with `FastDOM_G`,
//! estimates the routing-table memory of the two-level scheme (centers
//! keep one entry per destination cluster; members keep one entry toward
//! their center), and compares it with flat shortest-path tables.
//!
//! ```bash
//! cargo run --example routing_tables
//! ```

use kdom::core::fastdom::fast_dom_g;
use kdom::core::verify::check_fastdom_output;
use kdom::graph::generators::Family;

fn main() {
    let n = 500;
    let g = Family::Grid.generate(n, 3);
    let n = g.node_count();
    println!("network: {} nodes (grid), {} links\n", n, g.edge_count());

    println!(
        "{:>3}  {:>9}  {:>11}  {:>13}  {:>13}  {:>8}",
        "k", "clusters", "max radius", "flat entries", "2-lvl entries", "savings"
    );
    for k in [1usize, 2, 3, 5, 8, 12] {
        let cover = fast_dom_g(&g, k);
        check_fastdom_output(&g, &cover.clustering, k).expect("Theorem 4.4 contract");
        let clusters = cover.clustering.cluster_count();
        let radius = cover.clustering.max_radius(&g);

        // flat routing: every node stores an entry for every destination
        let flat = n * (n - 1);
        // two-level: a center stores one entry per cluster; a member just
        // routes via its center (one entry), plus intra-cluster routes of
        // at most (cluster size - 1) entries at the center
        let sizes = cover.clustering.sizes();
        let two_level: usize =
            clusters * clusters + (n - clusters) + sizes.iter().map(|s| s - 1).sum::<usize>();

        println!(
            "{:>3}  {:>9}  {:>11}  {:>13}  {:>13}  {:>7.1}x",
            k,
            clusters,
            radius,
            flat,
            two_level,
            flat as f64 / two_level as f64
        );
    }

    println!("\nLarger k trades stretch (≤ 2k extra hops via the center) for table size,");
    println!("exactly the [PU] size-efficiency tradeoff the paper speeds up.");
}
