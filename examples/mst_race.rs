//! MST race: `Fast-MST` (Theorem 5.6) against the baselines on one
//! topology, with the full per-stage round breakdown.
//!
//! ```bash
//! cargo run --release --example mst_race [n] [family]
//! ```
//!
//! `family` is one of: path, star, balanced-binary, random-tree,
//! caterpillar, grid, gnp (default: grid).

use kdom::graph::generators::Family;
use kdom::graph::mst_ref::is_mst;
use kdom::graph::properties::diameter;
use kdom::mst::baselines::{collect_all_mst, phase_doubling_mst, pipeline_only_mst};
use kdom::mst::fastmst::fast_mst;

fn parse_family(s: &str) -> Option<Family> {
    Family::ALL.into_iter().find(|f| f.to_string() == s)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(900);
    let family = args
        .get(1)
        .and_then(|a| parse_family(a))
        .unwrap_or(Family::Grid);

    let g = family.generate(n, 2026);
    println!(
        "topology: {family}, n = {}, m = {}, diameter = {}\n",
        g.node_count(),
        g.edge_count(),
        diameter(&g)
    );

    let fast = fast_mst(&g);
    assert!(is_mst(&g, &fast.mst_edges), "Fast-MST output verified");
    println!("Fast-MST (k = {}):", fast.k);
    println!(
        "  SimpleMST fragments   {:>8} rounds (measured)",
        fast.fragment_rounds
    );
    println!(
        "  DOMPartition          {:>8} rounds (charged; {} clusters)",
        fast.partition_charge.rounds, fast.cluster_count
    );
    println!(
        "  BFS tree              {:>8} rounds (measured)",
        fast.bfs_rounds
    );
    println!(
        "  Pipeline              {:>8} rounds (measured; {} stalls)",
        fast.pipeline_rounds, fast.stalls
    );
    println!(
        "  total                 {:>8} rounds\n",
        fast.total_rounds()
    );

    let pd = phase_doubling_mst(&g);
    assert!(is_mst(&g, &pd.mst_edges));
    println!("phase-doubling (O(n))   {:>8} rounds", pd.rounds);

    let po = pipeline_only_mst(&g);
    assert!(is_mst(&g, &po.mst_edges));
    println!("pipeline-only (O(n+D))  {:>8} rounds", po.rounds);

    let ca = collect_all_mst(&g);
    assert!(is_mst(&g, &ca.mst_edges));
    println!("collect-all (O(m+D))    {:>8} rounds", ca.rounds);

    let rows = [
        ("Fast-MST", fast.total_rounds()),
        ("phase-doubling", pd.rounds),
        ("pipeline-only", po.rounds),
        ("collect-all", ca.rounds),
    ];
    let (winner, best) = rows.iter().min_by_key(|(_, r)| *r).expect("non-empty");
    println!("\nwinner: {winner} at {best} rounds — all four outputs equal the unique MST ✓");
}
