//! Quickstart: compute a small k-dominating set of a random network and
//! verify every property the paper promises.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use kdom::core::fastdom::fast_dom_g;
use kdom::core::verify::{check_fastdom_output, dominating_size_bound};
use kdom::graph::generators::{gnp_connected, GenConfig};

fn main() {
    // A connected random network of 300 nodes, average degree ≈ 8.
    let n = 300;
    let g = gnp_connected(&GenConfig::with_seed(n, 42), 8.0 / n as f64);
    let k = 5;

    // FastDOM_G (Theorem 4.4): a k-dominating set of ≤ n/(k+1) nodes plus
    // the partition into radius-≤k clusters around the dominators.
    let result = fast_dom_g(&g, k);

    println!("graph: n = {n}, m = {}", g.edge_count());
    println!("k = {k}");
    println!(
        "dominating set: {} nodes (bound: {})",
        result.dominators().len(),
        dominating_size_bound(n, k)
    );
    println!(
        "partition: {} clusters, max radius {}",
        result.clustering.cluster_count(),
        result.clustering.max_radius(&g)
    );
    println!("charged rounds: {} (O(k log* n))", result.charge.rounds);

    // Check Theorem 4.4's full contract.
    check_fastdom_output(&g, &result.clustering, k).expect("Theorem 4.4 contract");
    println!("every node is within {k} hops of a dominator ✓");

    // Show a few dominators.
    let show: Vec<String> = result
        .dominators()
        .iter()
        .take(8)
        .map(|d| format!("{d}"))
        .collect();
    println!("first dominators: {}", show.join(", "));
}
